"""Greedy topology adversary: rewire edges to maximise local skew.

The dynamic local skew guarantee (Corollary 6.13) is about exactly this
attack: a *new* edge may join two nodes whose clocks disagree by up to the
global skew bound, and the algorithm is only required to shrink that skew
gradually.  :class:`~repro.network.churn.RandomRewirer` samples such edges
blindly; :class:`GreedyTopologyAdversary` picks them:

* **remove** the extra edge whose endpoints' logical clocks disagree
  *least* -- the edge doing the least work for the adversary (its
  B-constraint binds nobody), freeing the budget;
* **insert** the absent edge whose endpoints disagree *most* -- the worst
  legal new edge, instantly re-exposing the largest skew the network holds
  as *local* skew.

A persistent worst edge is self-defeating: one delivered message over it
lets the lagging endpoint adopt the leader's ``Lmax`` and the gap collapses
(for realistic parameters ``B_0`` far exceeds attainable skews, so the
B-constraint never blocks the jump), after which the adversary has
*synchronised* the extremes it meant to stress.  The ``hold`` knob is the
adaptive counter-move: an inserted edge is retracted after ``hold`` real
time -- long enough to exist at recorder samples (local skew per
Definition 3.4 counts any edge present at ``t``), short enough that
usually no ``Lmax`` crosses before retraction (discovery plus one message
delay typically exceeds a small ``hold``).  Transient edges the endpoints
may not even detect are explicitly within the model (Section 3.2), and the
dynamic local skew envelope of Corollary 6.13 permits skew up to
``B(0) > G(n)`` on a fresh edge, so the attack probes exactly the regime
the gradient property leaves open.

Every removal is submitted to a
:class:`~repro.adversary.connectivity.ConnectivityGuard`; moves the guard
refuses (protected backbone, snapshot or trailing-window disconnection) are
skipped, so emitted schedules stay certifiably T-interval connected --
the adversary is strong but *legal*, as Definition 3.1 requires.
"""

from __future__ import annotations

from ..sim.events import PRIORITY_TOPOLOGY
from ..network.graph import edge_key
from .base import PeriodicAdversary
from .connectivity import ConnectivityGuard

__all__ = ["GreedyTopologyAdversary"]

Edge = tuple[int, int]


class GreedyTopologyAdversary(PeriodicAdversary):
    """Maintains ``k_extra`` adversarially chosen extra edges.

    Parameters
    ----------
    n:
        Number of nodes (candidate pairs are all ``{u, v}``, ``u < v``).
    k_extra:
        Extra-edge budget (the protected set is never counted or touched).
    period:
        Real time between greedy rewiring rounds.
    protected:
        Edges never removed (typically the initial spanning backbone).
    interval:
        T-interval connectivity target handed to the guard (``None`` =
        snapshot connectivity only, sufficient when ``protected`` spans).
    hold:
        Retract each inserted edge this long after insertion (the
        expose-and-retract attack; see module docstring).  ``None`` keeps
        extras until the per-window remove-least rule recycles them.
    horizon:
        Stop rewiring after this time.
    """

    def __init__(
        self,
        n: int,
        k_extra: int,
        period: float,
        *,
        protected: list[Edge] | tuple[Edge, ...] = (),
        interval: float | None = None,
        hold: float | None = None,
        horizon: float | None = None,
    ) -> None:
        super().__init__(period, horizon=horizon)
        if n < 2:
            raise ValueError(f"need n >= 2; got {n!r}")
        if k_extra < 1:
            raise ValueError(f"k_extra must be >= 1; got {k_extra!r}")
        if hold is not None and hold <= 0.0:
            raise ValueError(f"hold must be positive; got {hold!r}")
        self.n = int(n)
        self.k_extra = int(k_extra)
        self.protected = {edge_key(*e) for e in protected}
        self.interval = interval
        self.hold = None if hold is None else float(hold)
        self.guard: ConnectivityGuard | None = None
        self._extras: set[Edge] = set()
        #: Rewiring moves actually committed (exposed for tests).
        self.moves = 0

    # ------------------------------------------------------------------ #
    # Candidate scoring
    # ------------------------------------------------------------------ #

    def _gap(self, clocks: dict[int, float], e: Edge) -> float:
        return abs(clocks[e[0]] - clocks[e[1]])

    def _changed_at(self, e: Edge, t: float) -> bool:
        """Whether edge ``e`` already has an event at instant ``t``.

        The model forbids removing and re-adding an edge at the same
        instant, so a candidate retracted at ``t`` (e.g. by a ``hold``
        expiry that shares a timestamp with this round) is not insertable.
        """
        assert self.graph is not None
        history = self.graph.history(*e)
        return bool(history) and history[-1][0] == t

    def _best_insertion(
        self, clocks: dict[int, float], t: float, exclude: Edge | None
    ) -> Edge | None:
        """Absent, unprotected pair with the largest clock gap.

        ``exclude`` is the edge removed at this same instant by this round.
        """
        assert self.graph is not None
        best: Edge | None = None
        best_gap = -1.0
        for u in range(self.n):
            for v in range(u + 1, self.n):
                e = (u, v)
                if (
                    e in self.protected
                    or e == exclude
                    or self.graph.has_edge(u, v)
                    or self._changed_at(e, t)
                ):
                    continue
                gap = self._gap(clocks, e)
                # Deterministic tie-break: lexicographically smallest pair.
                if gap > best_gap + 1e-15:
                    best, best_gap = e, gap
        return best

    # ------------------------------------------------------------------ #
    # PeriodicAdversary hooks
    # ------------------------------------------------------------------ #

    def on_install(self) -> None:
        assert self.sim is not None and self.graph is not None
        self.guard = ConnectivityGuard(
            self.graph, interval=self.interval, protected=self.protected
        )
        # Seed the extra budget at t = 0.  All clocks are 0, so "largest
        # gap" is degenerate; spread the extras across the diameter instead
        # (deterministically): pair up far-apart ids.
        for i in range(self.k_extra):
            u, v = i, self.n - 1 - i
            e = edge_key(u, v)
            if u == v or e in self.protected or self.graph.has_edge(*e):
                continue
            self.graph.add_edge(e[0], e[1], self.sim.now)
            self._extras.add(e)
            if self.hold is not None:
                self._schedule_retraction(e, self.sim.now + self.hold)

    def observe_and_act(self, t: float) -> None:
        assert self.graph is not None and self.guard is not None
        clocks = self.logical_snapshot(self.nodes)
        removed: Edge | None = None
        # Removal: drop the least-disagreeing extra the guard admits.
        live_extras = [e for e in sorted(self._extras) if self.graph.has_edge(*e)]
        if len(live_extras) >= self.k_extra:
            for e in sorted(live_extras, key=lambda e: (self._gap(clocks, e), e)):
                if self.guard.allows_removal(e[0], e[1], t):
                    self.graph.remove_edge(e[0], e[1], t)
                    self._extras.discard(e)
                    removed = e
                    self.moves += 1
                    break
        # Insertion: spend the freed budget on the worst legal new edge.
        if len(self._extras) < self.k_extra:
            fresh = self._best_insertion(clocks, t, exclude=removed)
            if fresh is not None:
                self.graph.add_edge(fresh[0], fresh[1], t)
                self._extras.add(fresh)
                self.moves += 1
                if self.hold is not None:
                    self._schedule_retraction(fresh, t + self.hold)

    def _schedule_retraction(self, e: Edge, when: float) -> None:
        assert self.sim is not None and self.graph is not None

        def retract() -> None:
            assert self.graph is not None and self.guard is not None
            if e not in self._extras or not self.graph.has_edge(*e):
                return  # already recycled by a remove-least round
            if self.guard.allows_removal(e[0], e[1], self.sim.now):
                self.graph.remove_edge(e[0], e[1], self.sim.now)
                self._extras.discard(e)
                self.moves += 1

        self.sim.schedule_at(
            when, retract, priority=PRIORITY_TOPOLOGY, label="adversary_retract"
        )

    def extras(self) -> set[Edge]:
        """The adversary's current extra-edge set (copy)."""
        return set(self._extras)
