"""Adaptive, simulator-coupled adversaries and connectivity certification.

The paper's model quantifies over an adversary choosing clock drifts,
message delays and topology changes jointly, constrained only by the drift
envelope, the delay bound and T-interval connectivity.  This package makes
that adversary executable and *adaptive* (it observes the running
execution), plus the certifier that keeps it honest:

* :class:`~repro.adversary.base.Adversary` /
  :class:`~repro.adversary.base.PeriodicAdversary` -- the protocol;
* :class:`~repro.adversary.drift.DriftAdversary` -- two-sided extremal
  rate steering within ``[1 - rho, 1 + rho]``;
* :class:`~repro.adversary.delay.DelayAdversary` -- adaptive skew-masking
  message delays in ``[0, T]`` (the shifting technique, online);
* :class:`~repro.adversary.topology.GreedyTopologyAdversary` -- greedy
  churn that removes the least-useful edge and inserts the worst legal one;
* :class:`~repro.adversary.connectivity.IntervalConnectivityCertifier` --
  exact Definition-3.1 certification of any emitted schedule.

Configs reference adversaries through
:class:`~repro.harness.registry.AdversaryRef`, so adversarial workloads
serialize, cache and sweep like any other
(:mod:`repro.sweep`, ``python -m repro sweep``).
"""

from .base import Adversary, CombinedAdversary, PeriodicAdversary
from .connectivity import (
    CertificationReport,
    ConnectivityGuard,
    IntervalConnectivityCertifier,
    WindowViolation,
    scan_interval_connectivity,
)
from .delay import AdaptiveMaskingDelayPolicy, DelayAdversary
from .drift import DriftAdversary
from .topology import GreedyTopologyAdversary

__all__ = [
    "AdaptiveMaskingDelayPolicy",
    "Adversary",
    "CertificationReport",
    "CombinedAdversary",
    "ConnectivityGuard",
    "DelayAdversary",
    "DriftAdversary",
    "GreedyTopologyAdversary",
    "IntervalConnectivityCertifier",
    "PeriodicAdversary",
    "WindowViolation",
    "scan_interval_connectivity",
]
