#!/usr/bin/env python
"""Diff two versioned ``BENCH_*.json`` artifacts and flag regressions.

The benchmarks under ``benchmarks/`` each write a versioned artifact
(``benchmarks/results/BENCH_<name>.json``, see ``_common.write_bench_json``)
so perf changes are reviewable across commits.  This tool compares two
such artifacts -- typically the checked-in/baseline one against a freshly
generated one -- and exits non-zero when a *directional* metric moved the
wrong way by more than the threshold:

* metrics whose name ends in ``seconds``, ``overhead``, ``dropped``,
  ``lost`` or ``violations`` are better **lower**;
* metrics whose name contains ``per_sec`` or ``speedup``, or is an
  oracle margin (``worst_margin``, ``margin_<monitor>`` -- but not the
  informational ``margin_time_*`` timestamps), are better **higher**;
* boolean metrics regress when they flip ``true -> false``;
* ``null`` on either side means "not measured here" (e.g. the parallel
  speedup gate on a host with too few CPUs) and never fails;
* everything else is informational (reported, never failing).

Cross-run **ledger records** (``benchmarks/.ledger/<run_id>.json``,
written by ``repro run/check/live --bundle``) are accepted in either
position and adapted on load: the ledger's workload becomes the bench
name, so two records compare only when they ran the same workload.

Artifacts from different benchmarks never compare; artifacts from
different package versions refuse to compare unless
``--allow-version-mismatch`` is given (a version bump usually means the
workload itself changed, which would make deltas meaningless).

Usage::

    python scripts/bench_compare.py OLD.json NEW.json [--threshold 0.10]
        [--allow-version-mismatch] [--json]

Exit codes: 0 = no regression, 1 = regression beyond threshold,
2 = artifacts not comparable / unreadable.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from typing import Any, Iterator

#: Metric-name suffixes where a lower value is an improvement.
LOWER_IS_BETTER = ("seconds", "overhead", "dropped", "lost", "violations")
#: Metric-name fragments where a higher value is an improvement.
HIGHER_IS_BETTER = ("per_sec", "speedup")

#: Ledger-record fields that are identity/timestamps, not metrics.
_LEDGER_SKIP = ("run_id", "recorded_unix", "bundle_path", "ledger_version")


def flatten(value: Any, prefix: str = "") -> Iterator[tuple[str, Any]]:
    """Yield ``(dotted.path, leaf)`` for every scalar leaf of ``value``."""
    if isinstance(value, dict):
        for key in sorted(value):
            path = f"{prefix}.{key}" if prefix else str(key)
            yield from flatten(value[key], path)
    elif isinstance(value, list):
        for i, item in enumerate(value):
            yield from flatten(item, f"{prefix}[{i}]")
    else:
        yield prefix, value


def direction(path: str) -> int:
    """-1 = lower is better, +1 = higher is better, 0 = informational."""
    leaf = path.rsplit(".", 1)[-1]
    if leaf.startswith("margin_time_"):
        return 0  # *when* the margin tightened is context, not quality
    if any(leaf.endswith(suffix) for suffix in LOWER_IS_BETTER):
        return -1
    if any(frag in leaf for frag in HIGHER_IS_BETTER):
        return 1
    if leaf.startswith("margin_") or leaf.endswith("worst_margin"):
        return 1  # slack against a theorem bound: shrinking is regressing
    return 0


def compare(
    old: dict[str, Any], new: dict[str, Any], threshold: float
) -> dict[str, Any]:
    """Build the comparison report for two parsed artifacts."""
    old_leaves = dict(flatten(old))
    new_leaves = dict(flatten(new))
    rows: list[dict[str, Any]] = []
    regressions: list[str] = []
    rel_deltas: list[float] = []
    for path in sorted(set(old_leaves) & set(new_leaves)):
        if path in ("bench", "version"):
            continue
        a, b = old_leaves[path], new_leaves[path]
        if a is None or b is None:
            # A null metric means "not measured here" (e.g. the parallel
            # speedup gate on a host with too few CPUs) -- never a
            # regression, in either direction.
            continue
        if isinstance(a, bool) or isinstance(b, bool):
            if a != b:
                regressed = bool(a) and not bool(b)
                rows.append(
                    {"metric": path, "old": a, "new": b,
                     "regressed": regressed}
                )
                if regressed:
                    regressions.append(path)
            continue
        if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
            continue
        delta = b - a
        rel = delta / abs(a) if a else (0.0 if not delta else float("inf"))
        sense = direction(path)
        regressed = sense != 0 and rel * -sense > threshold
        if sense != 0:
            rel_deltas.append(rel * -sense)  # >0 == got worse
        if delta or regressed:
            rows.append(
                {"metric": path, "old": a, "new": b, "delta": delta,
                 "rel": rel, "directional": sense != 0,
                 "regressed": regressed}
            )
        if regressed:
            regressions.append(path)
    return {
        "bench": new.get("bench"),
        "old_version": old.get("version"),
        "new_version": new.get("version"),
        "threshold": threshold,
        "median_directional_delta": (
            statistics.median(rel_deltas) if rel_deltas else 0.0
        ),
        "changes": rows,
        "regressions": regressions,
        "ok": not regressions,
    }


def _adapt_ledger(record: dict[str, Any]) -> dict[str, Any]:
    """Reshape a ledger record into the BENCH artifact shape.

    The workload becomes the bench name, so two records only compare
    when they ran the same workload; identity/timestamp fields drop out.
    """
    adapted = {k: v for k, v in record.items() if k not in _LEDGER_SKIP}
    adapted["bench"] = f"ledger:{record.get('workload')}"
    return adapted


def _load(path: str) -> dict[str, Any]:
    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")
    if isinstance(data, dict) and "ledger_version" in data:
        return _adapt_ledger(data)
    if not isinstance(data, dict) or "bench" not in data:
        raise SystemExit(f"error: {path} is not a BENCH_*.json artifact")
    return data


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", help="baseline BENCH_*.json artifact")
    parser.add_argument("new", help="freshly generated BENCH_*.json artifact")
    parser.add_argument(
        "--threshold", type=float, default=0.10,
        help="relative worsening beyond which a directional metric fails "
             "(default 0.10 = 10%%)",
    )
    parser.add_argument(
        "--allow-version-mismatch", action="store_true",
        help="compare artifacts from different package versions anyway",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the full comparison as JSON",
    )
    args = parser.parse_args(argv)

    old, new = _load(args.old), _load(args.new)
    if old["bench"] != new["bench"]:
        print(
            f"error: artifacts are different benchmarks "
            f"({old['bench']!r} vs {new['bench']!r})", file=sys.stderr,
        )
        return 2
    if old.get("version") != new.get("version") and not args.allow_version_mismatch:
        print(
            f"error: artifacts are from different versions "
            f"({old.get('version')!r} vs {new.get('version')!r}); "
            f"pass --allow-version-mismatch to compare anyway",
            file=sys.stderr,
        )
        return 2

    report = compare(old, new, args.threshold)
    if args.as_json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(
            f"bench {report['bench']}: {args.old} "
            f"(v{report['old_version']}) -> {args.new} "
            f"(v{report['new_version']})"
        )
        for row in report["changes"]:
            if "delta" in row:
                mark = "!!" if row["regressed"] else (
                    "  " if row["directional"] else " ."
                )
                print(
                    f" {mark} {row['metric']}: {row['old']} -> {row['new']} "
                    f"({row['rel']:+.2%})"
                )
            else:
                mark = "!!" if row["regressed"] else "  "
                print(f" {mark} {row['metric']}: {row['old']} -> {row['new']}")
        print(
            f"median directional delta: "
            f"{report['median_directional_delta']:+.2%} "
            f"(threshold {args.threshold:.0%})"
        )
        if report["regressions"]:
            print(f"REGRESSED: {', '.join(report['regressions'])}")
        else:
            print("no regressions")
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
