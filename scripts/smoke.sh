#!/usr/bin/env bash
# Sweep-subsystem smoke test: 4-config sweep on both backends + CLI round
# trip against a throwaway store. Fast (~10 s); run after any change to
# src/repro/sweep, the harness serialization layer, or the CLI.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== backend parity (pytest) =="
python -m pytest tests/test_sweep_smoke.py -q

echo "== CLI round trip =="
store="$(mktemp -d)"
trap 'rm -rf "$store"' EXIT
python -m repro sweep static_ring --set n=6 horizon=20 --seeds 2 \
    --processes 2 --store "$store" --quiet
python -m repro sweep static_ring --set n=6 horizon=20 --seeds 2 \
    --store "$store" --quiet | grep -q "0 executed, 2 cached" \
    || { echo "FAIL: rerun was not served from cache" >&2; exit 1; }
python -m repro ls --store "$store"

echo "smoke OK"
