#!/usr/bin/env bash
# Sweep + conformance + live smoke test: 4-config sweep on both backends,
# a CLI round trip against a throwaway store (verified via machine-readable
# JSON, not table scraping), a short deterministic `repro live` session,
# and one `repro check` run under the streaming oracle. Fast (~12 s); run
# after any change to src/repro/sweep, src/repro/oracle, src/repro/live,
# the harness serialization layer, or the CLI.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== backend parity (pytest) =="
python -m pytest tests/test_sweep_smoke.py -q

echo "== CLI round trip =="
store="$(mktemp -d)"
trap 'rm -rf "$store"' EXIT

assert_counts() {  # stdin: sweep --json output; argv: expected executed/cached
    python -c '
import json, sys
expected_executed, expected_cached = int(sys.argv[1]), int(sys.argv[2])
summary = json.load(sys.stdin)
executed, cached = summary["executed"], summary["cached"]
if (executed, cached) != (expected_executed, expected_cached):
    sys.exit(f"FAIL: expected {expected_executed} executed / "
             f"{expected_cached} cached, got {executed} / {cached}")
' "$@"
}

python -m repro sweep static_ring --set n=6 horizon=20 --seeds 2 \
    --processes 2 --store "$store" --quiet --json | assert_counts 2 0
python -m repro sweep static_ring --set n=6 horizon=20 --seeds 2 \
    --store "$store" --quiet --json | assert_counts 0 2

python -m repro ls --store "$store" --json | python -c '
import json, sys
entries = json.load(sys.stdin)["entries"]
if len(entries) != 2:
    sys.exit(f"FAIL: expected 2 store entries, got {len(entries)}")
'

echo "== live asyncio runtime =="
# A short deterministic in-process session (loopback channel, zero
# jitter); the verdict is asserted from the machine-readable summary.
python -m repro live --workload live_ring --duration 1 \
    --set sample_interval=0.2 --json | python -c '
import json, sys
summary = json.load(sys.stdin)
if summary["oracle_ok"] is not True:
    sys.exit(f"FAIL: live oracle not ok: {summary}")
if summary["messages_delivered"] <= 0:
    sys.exit(f"FAIL: live session moved no messages: {summary}")
'

echo "== telemetry flight recorder =="
# A flight-recorded run must produce schema-valid frames and a final
# snapshot that `repro top` can render (docs/observability.md).
python -m repro run large_ring --set n=16 horizon=30 \
    --metrics "$store/metrics.jsonl" --stats > /dev/null
python -c '
import sys
from repro.telemetry import read_frames
frames = read_frames(sys.argv[1])  # validates every frame against the schema
if not frames:
    sys.exit("FAIL: flight recorder wrote no frames")
last = frames[-1]
for prefix in ("kernel.", "transport.", "oracle."):
    names = last["counters"].keys() | last["gauges"].keys()
    if not any(k.startswith(prefix) for k in names):
        sys.exit(f"FAIL: no {prefix} metrics in final frame")
' "$store/metrics.jsonl"
python -m repro top "$store/metrics.jsonl" > /dev/null

echo "== causal tracing + forensics =="
# A traced run must export valid Perfetto/Chrome JSON with flow events,
# and `repro explain` must attribute a seeded broken-bound violation to
# the delay adversary (docs/observability.md).
python -m repro run static_ring --set n=8 horizon=60 seed=3 \
    --trace-out "$store/trace.json" --json > /dev/null
python -c '
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
if not events or not all("ph" in e and "ts" in e for e in events):
    sys.exit("FAIL: exported trace is not valid Chrome trace JSON")
if not any(e["ph"] == "s" for e in events):
    sys.exit("FAIL: no flow events in exported trace")
' "$store/trace.json"
python -m repro explain adversarial_delay --set n=8 horizon=120 seed=1 \
    --bound-scale 0.3 --max-reports 1 --json | python -c '
import json, sys
reports = json.load(sys.stdin)["reports"]
if not reports:
    sys.exit("FAIL: explain produced no cause reports")
top = reports[0]["causes"][0]
if top["kind"] != "causal_chain" or top["data"]["masked_count"] < 1:
    sys.exit(f"FAIL: adversary not attributed: {top}")
'

echo "== run bundle + observatory + ledger =="
# A bundled run must leave a schema-valid bundle, a ledger record, and a
# self-contained HTML report whose embedded JSON round-trips through the
# bundle validator (docs/observability.md).
python -m repro run large_ring --set n=16 horizon=30 \
    --bundle "$store/bundle" --ledger "$store/ledger" --json > /dev/null
python -m repro report "$store/bundle" -o "$store/report.html" > /dev/null
python -c '
import json, re, sys
from repro.obs import load_bundle, validate_bundle
html = open(sys.argv[1], encoding="utf-8").read()
match = re.search(
    r"<script type=\"application/json\" id=\"bundle-data\">(.*?)</script>",
    html, re.S)
if not match:
    sys.exit("FAIL: no embedded bundle JSON in report")
embedded = json.loads(match.group(1))
validate_bundle(embedded)
if embedded != load_bundle(sys.argv[2]):
    sys.exit("FAIL: embedded JSON does not match the bundle on disk")
if embedded["timeline"]["rows"] <= 0:
    sys.exit("FAIL: bundled run captured no timeline rows")
' "$store/report.html" "$store/bundle"
python -m repro history --ledger "$store/ledger" --json | python -c '
import json, sys
records = json.load(sys.stdin)["records"]
if len(records) != 1:
    sys.exit(f"FAIL: expected 1 ledger record, got {len(records)}")
if records[0]["oracle_ok"] is not True:
    sys.exit(f"FAIL: smoke ledger record not oracle_ok: {records[0]}")
'

echo "== streaming conformance oracle =="
python -m repro check static_ring --set n=6 horizon=20
# A deliberately broken bound must exit with exactly 1 (violation
# detected) -- not 2, which would mean the check itself errored out.
status=0
python -m repro check static_ring --set n=6 horizon=20 \
    --bound-scale 0.01 > /dev/null || status=$?
if [ "$status" -ne 1 ]; then
    echo "FAIL: broken bound not detected (exit $status, expected 1)" >&2
    exit 1
fi

echo "smoke OK"
