"""Tests for sweep specifications and their expansion."""

from __future__ import annotations

import pytest

from repro.harness import ExperimentConfig, configs
from repro.sweep import SweepSpec, grid, seeds, zip_


class TestCombinators:
    def test_grid_is_cartesian_product_last_fastest(self):
        axis = grid(a=[1, 2], b=[10, 20])
        assert axis.points == (
            {"a": 1, "b": 10},
            {"a": 1, "b": 20},
            {"a": 2, "b": 10},
            {"a": 2, "b": 20},
        )

    def test_zip_is_lockstep(self):
        axis = zip_(a=[1, 2], b=[10, 20])
        assert axis.points == ({"a": 1, "b": 10}, {"a": 2, "b": 20})

    def test_zip_rejects_ragged_ranges(self):
        with pytest.raises(ValueError, match="equally long"):
            zip_(a=[1, 2], b=[10])

    def test_seeds_int_and_explicit(self):
        assert seeds(3).points == ({"seed": 0}, {"seed": 1}, {"seed": 2})
        assert seeds([7, 9]).points == ({"seed": 7}, {"seed": 9})

    def test_scalar_range_rejected(self):
        with pytest.raises(TypeError, match="iterable"):
            grid(n=8)

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            grid(n=[])
        with pytest.raises(ValueError):
            grid()
        with pytest.raises(ValueError):
            seeds(0)


class TestNamedWorkloadExpansion:
    def test_expands_factory_kwargs(self):
        spec = SweepSpec(
            "static_path",
            base={"horizon": 50.0},
            axes=[grid(n=[4, 6]), seeds(2)],
        )
        cfgs = spec.expand()
        assert len(cfgs) == len(spec) == 4
        assert [c.params.n for c in cfgs] == [4, 4, 6, 6]
        assert [c.seed for c in cfgs] == [0, 1, 0, 1]
        assert all(c.horizon == 50.0 for c in cfgs)

    def test_point_labels_in_names(self):
        spec = SweepSpec("static_path", base={"n": 4}, axes=[seeds([3])])
        (cfg,) = spec.expand()
        assert "seed=3" in cfg.name

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError, match="no_such"):
            SweepSpec("no_such_workload")

    def test_every_registered_workload_is_callable(self):
        for name, factory in configs.WORKLOADS.items():
            assert callable(factory), name
            assert getattr(configs, name) is factory


class TestConfigBaseExpansion:
    def test_field_overrides_via_replace(self):
        base = configs.static_path(6, horizon=40.0)
        spec = SweepSpec(base, axes=[grid(algorithm=["dcsa", "max"])])
        cfgs = spec.expand()
        assert [c.algorithm for c in cfgs] == ["dcsa", "max"]
        assert all(c.horizon == 40.0 for c in cfgs)
        # The base object is untouched.
        assert base.algorithm == "dcsa"

    def test_params_overrides_revalidate(self):
        base = configs.static_path(6)
        floor = 2.0 * (1.0 + base.params.rho) * base.params.tau
        spec = SweepSpec(base, axes=[grid(b0=[1.1 * floor, 2.0 * floor])])
        cfgs = spec.expand()
        assert [c.params.b0 for c in cfgs] == [1.1 * floor, 2.0 * floor]

    def test_dotted_params_prefix(self):
        base = configs.static_path(6)
        spec = SweepSpec(base, axes=[grid(**{"params.rho": [0.01, 0.02]})])
        assert [c.params.rho for c in spec.expand()] == [0.01, 0.02]

    def test_invalid_params_override_raises(self):
        base = configs.static_path(6)
        spec = SweepSpec(base, axes=[grid(b0=[0.001])])
        with pytest.raises(Exception, match="b0"):
            spec.expand()

    def test_sweeping_n_over_concrete_config_rejected(self):
        # initial_edges were built for n=6; resizing params alone would
        # silently run a mismatched topology.
        base = configs.static_path(6)
        for key in ("n", "params.n"):
            spec = SweepSpec(base, axes=[grid(**{key: [12]})])
            with pytest.raises(KeyError, match="named workload"):
                spec.expand()

    def test_sweeping_horizon_over_churned_config_rejected(self):
        base = configs.backbone_churn(6)
        spec = SweepSpec(base, axes=[grid(horizon=[100.0, 200.0])])
        with pytest.raises(KeyError, match="named workload"):
            spec.expand()
        # Churn-free configs sweep horizon freely.
        plain = configs.static_path(6)
        spec = SweepSpec(plain, axes=[grid(horizon=[100.0, 200.0])])
        assert [c.horizon for c in spec.expand()] == [100.0, 200.0]

    def test_unknown_override_key_rejected(self):
        base = configs.static_path(6)
        spec = SweepSpec(base, axes=[grid(bogus=[1])])
        with pytest.raises(KeyError, match="bogus"):
            spec.expand()

    def test_duplicate_axis_key_rejected(self):
        base = configs.static_path(6)
        spec = SweepSpec(base, axes=[seeds(2), seeds(2)])
        with pytest.raises(ValueError, match="more than once"):
            spec.expand()

    def test_duplicate_axis_key_rejected_even_when_key_in_base(self):
        spec = SweepSpec(
            "static_path",
            base={"n": 8},
            axes=[grid(n=[8, 16]), grid(n=[4])],
        )
        with pytest.raises(ValueError, match="more than once"):
            spec.points()

    def test_axis_may_override_base_key(self):
        spec = SweepSpec("static_path", base={"n": 8, "horizon": 30.0}, axes=[grid(n=[4, 6])])
        assert [c.params.n for c in spec.expand()] == [4, 6]

    def test_no_axes_expands_to_base(self):
        base = configs.static_path(6)
        spec = SweepSpec(base)
        (cfg,) = spec.expand()
        assert isinstance(cfg, ExperimentConfig)
        assert cfg.params.n == 6

    def test_bad_workload_type_rejected(self):
        with pytest.raises(TypeError, match="workload"):
            SweepSpec(42)
