"""Online/offline agreement: the streaming oracle vs the recorded metrics.

For a matrix of workloads -- static, churned, and all four adversarial --
one run carries *both* the offline recorder and the streaming oracle at
the same sampling interval.  Every verdict and worst margin the oracle
reports must match what the offline :mod:`repro.analysis.metrics`
computations find in the recorded history; any divergence means one of the
two checkers is wrong.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import envelope_violations, max_estimate_lag, max_global_skew
from repro.core import skew_bounds as sb
from repro.harness import OracleRef, configs, run_experiment

HORIZON = 60.0

WORKLOADS = [
    ("static_path", lambda: configs.static_path(8, horizon=HORIZON, seed=3)),
    ("static_ring", lambda: configs.static_ring(8, horizon=HORIZON, seed=4)),
    ("backbone_churn", lambda: configs.backbone_churn(8, horizon=HORIZON, seed=5)),
    ("flapping_edges", lambda: configs.flapping_edges(8, horizon=HORIZON, seed=6)),
    ("adversarial_drift", lambda: configs.adversarial_drift(8, horizon=HORIZON, seed=7)),
    ("adversarial_delay", lambda: configs.adversarial_delay(8, horizon=HORIZON, seed=8)),
    ("greedy_topology", lambda: configs.greedy_topology(8, horizon=HORIZON, seed=9)),
    ("combined_adversary", lambda: configs.combined_adversary(8, horizon=HORIZON, seed=10)),
]


@pytest.fixture(scope="module", params=WORKLOADS, ids=[w[0] for w in WORKLOADS])
def monitored_run(request):
    _, make = request.param
    cfg = make()
    cfg.track_edges = True
    cfg.track_max_estimates = True
    cfg.oracle = OracleRef("standard", {})
    return run_experiment(cfg)


class TestAgreement:
    def test_verdict_matches_offline_bundle(self, monitored_run):
        res = monitored_run
        record, params = res.record, res.params
        dt = np.diff(record.times)
        dl = np.diff(record.clocks, axis=0)
        offline_ok = (
            bool(np.all(dl >= 0.5 * dt[:, None] - 1e-9))
            and bool(np.all(record.max_estimates >= record.clocks - 1e-9))
            and max_global_skew(record) <= sb.global_skew_bound(params) + 1e-9
            and float(max_estimate_lag(record).max())
            <= sb.max_propagation_bound(params) + 1e-9
            and envelope_violations(record, params).compliant
        )
        assert res.oracle_report.ok == offline_ok

    def test_global_skew_peak_matches(self, monitored_run):
        res = monitored_run
        online = res.oracle_report.monitor("global_skew")
        assert online.worst_observed == pytest.approx(
            max_global_skew(res.record), abs=1e-12
        )
        assert online.checks == res.record.samples

    def test_estimate_lag_peak_matches(self, monitored_run):
        res = monitored_run
        online = res.oracle_report.monitor("estimate_lag")
        assert online.worst_observed == pytest.approx(
            float(max_estimate_lag(res.record).max()), abs=1e-12
        )

    def test_envelope_agrees_sample_for_sample(self, monitored_run):
        res = monitored_run
        offline = envelope_violations(res.record, res.params)
        online = res.oracle_report.monitor("envelope")
        assert online.checks == offline.samples_checked
        assert online.violations == offline.violations
        assert online.extras["worst_ratio"] == pytest.approx(
            offline.worst_ratio, abs=1e-12
        )
        if offline.worst_edge is not None:
            assert online.extras["worst_edge"] == offline.worst_edge
            assert online.extras["worst_age"] == pytest.approx(
                offline.worst_age, abs=1e-12
            )

    def test_progress_agrees_with_offline_rate_floor(self, monitored_run):
        res = monitored_run
        record = res.record
        dt = np.diff(record.times)
        dl = np.diff(record.clocks, axis=0)
        offline_ok = bool(np.all(dl >= 0.5 * dt[:, None] - 1e-9))
        online = res.oracle_report.monitor("progress")
        assert (online.violations == 0) == offline_ok
        # Worst slack agrees with the recorded series.
        offline_margin = float((dl - 0.5 * dt[:, None]).min())
        assert online.worst_margin == pytest.approx(offline_margin, abs=1e-12)

    def test_lmax_dominance_agrees(self, monitored_run):
        res = monitored_run
        record = res.record
        offline_ok = bool(np.all(record.max_estimates >= record.clocks - 1e-9))
        online = res.oracle_report.monitor("lmax_dominates")
        assert (online.violations == 0) == offline_ok
        offline_margin = float((record.max_estimates - record.clocks).min())
        assert online.worst_margin == pytest.approx(offline_margin, abs=1e-12)
