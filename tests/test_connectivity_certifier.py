"""Tests for T-interval connectivity certification (Definition 3.1).

The satellite property: :class:`RotatingBackboneChurn` guarantees
``L``-interval connectivity for every ``L <= overlap`` by construction
(each window's spanning path is alive ``overlap`` before and after the
window), so its recorded event log must pass the certifier for all such
``L`` -- and the certifier must reject a schedule with a known gap.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary import (
    ConnectivityGuard,
    IntervalConnectivityCertifier,
    scan_interval_connectivity,
)
from repro.network.churn import RotatingBackboneChurn
from repro.network.eventlog import GraphEventLog
from repro.network.graph import DynamicGraph
from repro.sim.simulator import Simulator


def _rotating_backbone_log(
    n: int, window: float, overlap: float, horizon: float, seed: int
) -> GraphEventLog:
    """Run only the churn process and record its emitted schedule."""
    sim = Simulator()
    graph = DynamicGraph(range(n))
    log = GraphEventLog()
    log.attach(graph)
    churn = RotatingBackboneChurn(
        n, window, overlap, np.random.default_rng(seed), horizon=horizon
    )
    churn.install(sim, graph)
    sim.run_until(horizon)
    return log


class TestRotatingBackboneCertifies:
    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=10),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        frac=st.floats(min_value=0.05, max_value=1.0),
    )
    def test_passes_for_all_intervals_up_to_overlap(self, n, seed, frac):
        window, overlap, horizon = 20.0, 8.0, 100.0
        log = _rotating_backbone_log(n, window, overlap, horizon, seed)
        interval = frac * overlap
        cert = IntervalConnectivityCertifier.from_event_log(log, n, interval)
        report = cert.certify(horizon - window)
        assert report.ok, report.summary()

    def test_certifier_windows_are_actually_checked(self):
        log = _rotating_backbone_log(6, 20.0, 8.0, 100.0, seed=1)
        cert = IntervalConnectivityCertifier.from_event_log(log, 6, 8.0)
        report = cert.certify(80.0)
        assert report.windows_checked > 10
        assert cert.events_observed == len(log.events)


class TestCertifierRejectsGaps:
    def test_known_gap_is_reported(self):
        # Path alive on [0, 10]; edge (1, 2) missing on (10, 14): every
        # window overlapping the hole fails for interval 2.
        cert = IntervalConnectivityCertifier(3, interval=2.0)
        cert.observe(0.0, 0, 1, True)
        cert.observe(0.0, 1, 2, True)
        cert.observe(10.0, 1, 2, False)
        cert.observe(14.0, 1, 2, True)
        report = cert.certify(20.0)
        assert not report.ok
        v = report.violations[0]
        assert v.t1 <= 14.0 and v.t2 >= 10.0
        assert v.reachable < 3
        assert "FAIL" in report.summary()

    def test_disconnected_final_state_fails(self):
        cert = IntervalConnectivityCertifier(4, interval=1.0)
        cert.observe(0.0, 0, 1, True)
        cert.observe(0.0, 2, 3, True)  # two components forever
        assert not cert.certify(5.0).ok

    def test_attach_mirrors_live_graph(self):
        graph = DynamicGraph(range(3), [(0, 1)])
        cert = IntervalConnectivityCertifier(3, interval=1.0)
        cert.attach(graph)
        graph.add_edge(1, 2, 1.0)
        graph.remove_edge(1, 2, 3.0)
        assert cert.events_observed == 3  # E_0 replay + two live events
        assert cert.shadow.history(0, 1) == [(0.0, True)]
        assert cert.shadow.history(1, 2) == [(1.0, True), (3.0, False)]

    def test_attach_replays_pre_attach_history(self):
        # Regression: initial edges fire their events during graph
        # construction, before any subscriber exists; attach must replay
        # them or every window looks spuriously disconnected.
        graph = DynamicGraph(range(3), [(0, 1), (1, 2)])
        cert = IntervalConnectivityCertifier(3, interval=1.0)
        cert.attach(graph)
        assert cert.certify(5.0).ok

    def test_window_straddling_two_gaps_is_caught(self):
        # Regression: the worst window can start at `removal - interval`,
        # between event times.  Edge (0, 2) is absent on [1, 2) and edge
        # (0, 1) is removed at 11.5, so the window [1.5, 11.5] isolates
        # node 0 -- yet no window anchored *at* an event time fails.  The
        # anchor set must therefore include event_time - interval.
        cert = IntervalConnectivityCertifier(3, interval=10.0)
        cert.observe(0.0, 0, 1, True)
        cert.observe(0.0, 0, 2, True)
        cert.observe(0.0, 1, 2, True)
        cert.observe(1.0, 0, 2, False)
        cert.observe(2.0, 0, 2, True)
        cert.observe(11.5, 0, 1, False)
        cert.observe(12.5, 0, 1, True)
        report = cert.certify(20.0)
        assert not report.ok
        assert any(v.t1 == pytest.approx(1.5) for v in report.violations)
        # The graph's built-in boolean check shares the anchor set.
        assert not cert.shadow.check_interval_connectivity(10.0, 20.0)

    def test_scan_agrees_with_graph_builtin_check(self):
        graph = DynamicGraph(range(4), [(0, 1), (1, 2), (2, 3)])
        graph.remove_edge(1, 2, 5.0)
        graph.add_edge(1, 2, 6.0)
        for interval in (0.5, 2.0):
            report = scan_interval_connectivity(graph, interval, 10.0)
            assert report.ok == graph.check_interval_connectivity(interval, 10.0)

    def test_scan_validates_arguments(self):
        graph = DynamicGraph(range(2), [(0, 1)])
        with pytest.raises(ValueError, match="interval"):
            scan_interval_connectivity(graph, 0.0, 10.0)
        with pytest.raises(ValueError, match="t_end"):
            scan_interval_connectivity(graph, 1.0, -1.0)


class TestConnectivityGuard:
    def test_refuses_protected_edge(self):
        graph = DynamicGraph(range(3), [(0, 1), (1, 2), (0, 2)])
        guard = ConnectivityGuard(graph, protected=[(0, 1)])
        assert not guard.allows_removal(0, 1, 1.0)
        assert guard.refusals == 1

    def test_refuses_bridge_removal(self):
        graph = DynamicGraph(range(3), [(0, 1), (1, 2), (0, 2)])
        guard = ConnectivityGuard(graph)
        assert guard.allows_removal(0, 2, 1.0)  # cycle edge: fine
        graph.remove_edge(0, 2, 1.0)
        assert not guard.allows_removal(0, 1, 2.0)  # now a bridge
        assert not guard.allows_removal(1, 2, 2.0)

    def test_refuses_absent_edge(self):
        graph = DynamicGraph(range(3), [(0, 1), (1, 2)])
        guard = ConnectivityGuard(graph)
        assert not guard.allows_removal(0, 2, 1.0)

    def test_trailing_window_check(self):
        # Triangle, but (0, 2) only appeared at t=9: within the trailing
        # window [4, 10] the subgraph existing *throughout* is the path,
        # so removing (0, 1) must be refused even though the snapshot
        # stays connected via the fresh edge.
        graph = DynamicGraph(range(3), [(0, 1), (1, 2)])
        graph.add_edge(0, 2, 9.0)
        guard = ConnectivityGuard(graph, interval=6.0)
        assert not guard.allows_removal(0, 1, 10.0)
        # Without the interval requirement the same move is fine.
        lax = ConnectivityGuard(graph)
        assert lax.allows_removal(0, 1, 10.0)
