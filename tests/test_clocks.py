"""Tests for hardware clock models: exactness, inversion, drift bounds."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.clocks import (
    ConstantRateClock,
    PiecewiseRateClock,
    extremal_clock,
    perfect_clock,
    random_walk_clock,
    sinusoidal_clock,
    two_phase_clock,
    validate_drift,
)


class TestConstantRateClock:
    def test_perfect_clock_identity(self):
        c = perfect_clock()
        assert c.value(3.7) == 3.7
        assert c.time_at(3.7) == 3.7

    def test_fast_clock(self):
        c = ConstantRateClock(1.25)
        assert c.value(4.0) == pytest.approx(5.0)
        assert c.time_at(5.0) == pytest.approx(4.0)

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            ConstantRateClock(0.0)

    def test_extremal_clocks(self):
        fast = extremal_clock(0.1, fast=True)
        slow = extremal_clock(0.1, fast=False)
        assert fast.value(10.0) == pytest.approx(11.0)
        assert slow.value(10.0) == pytest.approx(9.0)


class TestPiecewiseRateClock:
    def test_two_segments_exact(self):
        c = PiecewiseRateClock([0.0, 10.0], [2.0, 0.5])
        assert c.value(10.0) == pytest.approx(20.0)
        assert c.value(14.0) == pytest.approx(22.0)
        assert c.time_at(22.0) == pytest.approx(14.0)

    def test_rate_at(self):
        c = PiecewiseRateClock([0.0, 10.0], [2.0, 0.5])
        assert c.rate_at(5.0) == 2.0
        assert c.rate_at(10.0) == 0.5  # boundary belongs to the new segment

    def test_rate_bounds(self):
        c = PiecewiseRateClock([0.0, 1.0, 2.0], [1.1, 0.9, 1.0])
        assert c.rate_bounds() == (0.9, 1.1)

    def test_must_start_at_zero(self):
        with pytest.raises(ValueError):
            PiecewiseRateClock([1.0], [1.0])

    def test_times_strictly_increasing(self):
        with pytest.raises(ValueError):
            PiecewiseRateClock([0.0, 5.0, 5.0], [1.0, 1.0, 1.0])

    def test_negative_time_query_rejected(self):
        c = PiecewiseRateClock([0.0], [1.0])
        with pytest.raises(ValueError):
            c.value(-1.0)

    def test_two_phase_closed_form(self):
        # H(t) = t + min(rho t, T d) for the beta execution of Lemma 4.2.
        rho, t_bound, d = 0.05, 1.0, 4
        c = two_phase_clock(rho, switch_time=t_bound * d / rho)
        for t in (0.0, 10.0, 79.9, 80.0, 100.0, 500.0):
            assert c.value(t) == pytest.approx(t + min(rho * t, t_bound * d))

    def test_two_phase_zero_switch_is_perfect(self):
        c = two_phase_clock(0.05, switch_time=0.0)
        assert c.value(7.0) == pytest.approx(7.0)


class TestScheduleBuilders:
    def test_random_walk_within_drift(self, rng):
        c = random_walk_clock(0.03, horizon=100.0, segment=5.0, rng=rng)
        validate_drift(c, 0.03)

    def test_random_walk_bad_persistence(self, rng):
        with pytest.raises(ValueError):
            random_walk_clock(0.01, horizon=10.0, segment=1.0, rng=rng, persistence=1.0)

    def test_sinusoidal_within_drift(self):
        c = sinusoidal_clock(0.02, period=50.0, horizon=200.0)
        validate_drift(c, 0.02)

    def test_sinusoidal_needs_samples(self):
        with pytest.raises(ValueError):
            sinusoidal_clock(0.02, period=50.0, horizon=100.0, samples_per_period=2)

    def test_validate_drift_rejects_violation(self):
        c = ConstantRateClock(1.2)
        with pytest.raises(ValueError, match="drift"):
            validate_drift(c, 0.1)


@st.composite
def piecewise_clocks(draw):
    """Random admissible piecewise clocks with rho = 0.2."""
    k = draw(st.integers(min_value=1, max_value=8))
    gaps = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=20.0, allow_nan=False),
            min_size=k - 1,
            max_size=k - 1,
        )
    )
    times = [0.0]
    for g in gaps:
        times.append(times[-1] + g)
    rates = draw(
        st.lists(
            st.floats(min_value=0.8, max_value=1.2, allow_nan=False),
            min_size=k,
            max_size=k,
        )
    )
    return PiecewiseRateClock(times, rates)


@given(piecewise_clocks(), st.floats(min_value=0.0, max_value=200.0, allow_nan=False))
def test_property_inverse_round_trip(clock, t):
    """time_at(value(t)) == t for strictly increasing clocks."""
    assert clock.time_at(clock.value(t)) == pytest.approx(t, abs=1e-9)


@given(
    piecewise_clocks(),
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
)
def test_property_drift_bound_on_increments(clock, t1, dt):
    """Increments obey (1-rho) dt <= H(t2) - H(t1) <= (1+rho) dt."""
    rho = 0.2 + 1e-9
    t2 = t1 + dt
    dh = clock.value(t2) - clock.value(t1)
    assert (1 - rho) * dt - 1e-9 <= dh <= (1 + rho) * dt + 1e-9


@given(piecewise_clocks())
def test_property_strictly_increasing(clock):
    ts = np.linspace(0.0, 150.0, 97)
    vals = [clock.value(float(t)) for t in ts]
    assert all(b > a for a, b in zip(vals, vals[1:]))
