"""Smoke test: every example script imports cleanly (no execution).

Full example runs take tens of seconds; importing them catches API drift,
syntax errors and missing symbols at test-suite cost of milliseconds. The
scripts guard execution behind ``if __name__ == "__main__"``.
"""

from __future__ import annotations

import importlib.util
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)  # defines main() but does not run it
    assert hasattr(module, "main"), f"{path.name} should expose main()"


def test_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "tdma_wireless",
        "edge_insertion",
        "churn_stress",
        "lower_bound_demo",
    } <= names
