"""Tests for the recorder, metrics and report modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro import SystemParams
from repro.analysis.metrics import (
    drift_rate,
    envelope_violations,
    episode_peak_skew,
    global_skew_series,
    gradient_profile,
    local_skew_series,
    max_estimate_lag,
    max_global_skew,
    max_local_skew,
    stabilization_age,
    stable_local_skew_measured,
)
from repro.analysis.recorder import EdgeEpisode, RunRecord, SkewRecorder
from repro.analysis.report import TextTable, csv_text, format_value
from repro.analysis import theory
from repro.harness import configs, run_experiment
from repro.network.graph import DynamicGraph
from repro.network.topology import path_edges
from repro.sim.simulator import Simulator


def synthetic_record() -> RunRecord:
    """3 nodes, 4 samples, one edge episode with a decaying skew."""
    times = np.array([0.0, 1.0, 2.0, 3.0])
    clocks = np.array(
        [
            [0.0, 0.0, 0.0],
            [1.0, 1.2, 0.9],
            [2.0, 2.5, 1.8],
            [3.0, 3.2, 2.9],
        ]
    )
    ep = EdgeEpisode(
        u=0,
        v=1,
        add_time=0.0,
        ages=np.array([0.0, 1.0, 2.0, 3.0]),
        skews=np.array([0.0, 0.2, 0.5, 0.2]),
    )
    return RunRecord(node_ids=[0, 1, 2], times=times, clocks=clocks, episodes=[ep])


class TestRecordBasics:
    def test_global_skew_series(self):
        r = synthetic_record()
        assert global_skew_series(r).tolist() == pytest.approx([0.0, 0.3, 0.7, 0.3])
        assert max_global_skew(r) == pytest.approx(0.7)

    def test_column(self):
        r = synthetic_record()
        assert r.column(1).tolist() == [0.0, 1.2, 2.5, 3.2]

    def test_local_skew(self):
        r = synthetic_record()
        assert max_local_skew(r) == pytest.approx(0.5)
        series = local_skew_series(r)
        assert series.tolist() == pytest.approx([0.0, 0.2, 0.5, 0.2])

    def test_episodes_for(self):
        r = synthetic_record()
        assert len(r.episodes_for(1, 0)) == 1
        assert r.episodes_for(0, 2) == []

    def test_empty_record(self):
        r = RunRecord(node_ids=[0], times=np.empty(0), clocks=np.empty((0, 1)))
        assert max_global_skew(r) == 0.0
        assert global_skew_series(r).size == 0


class TestEpisodeMetrics:
    def test_stabilization_age(self):
        ep = EdgeEpisode(
            0, 1, 10.0,
            ages=np.array([0.0, 1.0, 2.0, 3.0, 4.0]),
            skews=np.array([5.0, 4.0, 1.0, 0.5, 0.4]),
        )
        assert stabilization_age(ep, threshold=1.5) == pytest.approx(2.0)
        assert stabilization_age(ep, threshold=10.0) == pytest.approx(0.0)
        assert stabilization_age(ep, threshold=0.1) is None

    def test_stabilization_requires_staying_below(self):
        ep = EdgeEpisode(
            0, 1, 0.0,
            ages=np.array([0.0, 1.0, 2.0]),
            skews=np.array([0.5, 3.0, 0.5]),  # dips back up
        )
        assert stabilization_age(ep, threshold=1.0) == pytest.approx(2.0)

    def test_peak(self):
        ep = EdgeEpisode(0, 1, 0.0, ages=np.array([0.0]), skews=np.array([2.5]))
        assert episode_peak_skew(ep) == 2.5
        empty = EdgeEpisode(0, 1, 0.0, ages=np.empty(0), skews=np.empty(0))
        assert episode_peak_skew(empty) == 0.0

    def test_stable_local_skew_measured(self):
        params = SystemParams.for_network(4)
        ep = EdgeEpisode(
            0, 1, 0.0,
            ages=np.array([0.0, 1000.0]),
            skews=np.array([50.0, 2.0]),
        )
        r = RunRecord(node_ids=[0, 1], times=np.array([0.0]),
                      clocks=np.zeros((1, 2)), episodes=[ep])
        # Only samples older than the stabilization age count.
        assert stable_local_skew_measured(r, params) == pytest.approx(2.0)
        assert stable_local_skew_measured(r, params, age_floor=0.0) == 50.0


class TestEnvelope:
    def test_compliant_record(self):
        params = SystemParams.for_network(4)
        r = synthetic_record()
        chk = envelope_violations(r, params)
        assert chk.compliant
        assert chk.samples_checked == 4
        assert chk.worst_ratio < 1.0

    def test_violation_detected(self):
        params = SystemParams.for_network(4)
        from repro.core import skew_bounds as sb
        big = 2.0 * sb.dynamic_local_skew(params, 1e9)
        ep = EdgeEpisode(
            0, 1, 0.0,
            ages=np.array([1e9]),
            skews=np.array([big]),
        )
        r = RunRecord(node_ids=[0, 1], times=np.array([0.0]),
                      clocks=np.zeros((1, 2)), episodes=[ep])
        chk = envelope_violations(r, params)
        assert not chk.compliant
        assert chk.violations == 1
        assert chk.worst_ratio == pytest.approx(2.0)
        assert chk.worst_edge == (0, 1)

    def test_grace_period(self):
        params = SystemParams.for_network(4)
        ep = EdgeEpisode(0, 1, 0.0, ages=np.array([0.5]), skews=np.array([1e9]))
        r = RunRecord(node_ids=[0, 1], times=np.array([0.0]),
                      clocks=np.zeros((1, 2)), episodes=[ep])
        assert envelope_violations(r, params, grace=1.0).samples_checked == 0


class TestRecorderLive:
    def test_samples_and_episodes(self):
        sim = Simulator()
        g = DynamicGraph(range(3), path_edges(3))

        class Dummy:
            def __init__(self, rate):
                self.rate = rate

            def logical_clock(self, t):
                return self.rate * t

        nodes = {0: Dummy(1.0), 1: Dummy(1.1), 2: Dummy(0.9)}
        rec = SkewRecorder(sim, g, nodes, interval=1.0, track_edges=True, end=5.0)
        rec.install()
        sim.schedule_at(2.5, lambda: g.remove_edge(0, 1, sim.now))
        sim.schedule_at(3.5, lambda: g.add_edge(0, 1, sim.now))
        sim.run_until(5.0)
        record = rec.result()
        assert record.samples == 6
        eps = record.episodes_for(0, 1)
        assert len(eps) == 2
        assert eps[0].end_time == 2.5
        assert eps[1].add_time == 3.5
        assert eps[1].end_time is None
        # Skew grows as 0.1 * t on edge (0, 1).
        assert eps[0].skews[-1] == pytest.approx(0.2)

    def test_drift_rate(self):
        r = synthetic_record()
        assert drift_rate(r) == pytest.approx(1.0, abs=0.2)
        with pytest.raises(ValueError):
            drift_rate(RunRecord(node_ids=[0], times=np.array([0.0]),
                                 clocks=np.zeros((1, 1))))

    def test_max_estimate_lag_requires_tracking(self):
        r = synthetic_record()
        with pytest.raises(ValueError):
            max_estimate_lag(r)


class TestGradientProfile:
    def test_profile_on_run(self):
        res = run_experiment(configs.static_path(8, horizon=60.0, seed=2))
        prof = gradient_profile(res.record, res.graph, 60.0)
        assert set(prof) == set(range(1, 8))
        assert all(v >= 0 for v in prof.values())


class TestReport:
    def test_format_value(self):
        assert format_value(None) == "-"
        assert format_value(True) == "yes"
        assert format_value(1.23456) == "1.235"
        assert format_value("x") == "x"

    def test_table_render(self):
        t = TextTable(["a", "bb"], title="T")
        t.add_row([1, 2.5])
        out = t.render()
        assert "== T ==" in out
        assert "a" in out and "bb" in out and "2.500" in out

    def test_row_width_mismatch(self):
        t = TextTable(["a"])
        with pytest.raises(ValueError):
            t.add_row([1, 2])

    def test_csv(self):
        text = csv_text(["x", "y"], [[1, 2.0], [3, None]])
        lines = text.strip().splitlines()
        assert lines[0] == "x,y"
        assert lines[1] == "1,2"
        assert lines[2] == "3,-"


class TestTheoryCurves:
    def test_envelope_curve_matches_scalar(self):
        params = SystemParams.for_network(8)
        from repro.core import skew_bounds as sb
        ages = np.array([0.0, 10.0, 1000.0])
        curve = theory.envelope_curve(params, ages)
        for a, v in zip(ages, curve):
            assert v == pytest.approx(sb.dynamic_local_skew(params, float(a)))

    def test_global_skew_curve_linear(self):
        params = SystemParams.for_network(8)
        ns = np.array([2, 3, 5, 9])
        curve = theory.global_skew_curve(params, ns)
        assert curve[3] == pytest.approx(8 * curve[0])

    def test_adaptation_curve_inverse(self):
        params = SystemParams.for_network(8)
        b0s = np.array([params.b0, 2 * params.b0])
        curve = theory.adaptation_curve(params, b0s)
        assert curve[0] == pytest.approx(2 * curve[1])

    def test_stable_skew_curve_increasing_in_b0(self):
        params = SystemParams.for_network(8)
        b0s = np.array([params.b0, 3 * params.b0])
        curve = theory.stable_skew_curve(params, b0s)
        assert curve[1] > curve[0]

    def test_lower_bound_time_curve(self):
        params = SystemParams.for_network(8)
        ns = np.array([8, 16])
        curve = theory.lower_bound_time_curve(params, ns)
        assert curve[1] > curve[0]
