"""Tests for the alpha/beta execution pair of Lemma 4.2.

The key property-based test re-verifies Part II of the lemma numerically:
the disguised beta delays are always legal (in ``[0, T]``, and within the
mask's window on constrained edges) -- for random masks, layers and times.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SystemParams
from repro.lowerbound.executions import (
    BetaDelayPolicy,
    beta_clock,
    build_execution_pair,
)
from repro.lowerbound.mask import DelayMask, flexible_distances
from repro.network.topology import path_edges, two_chain_edges


class TestBetaClock:
    def test_closed_form(self):
        rho, t_bound, d = 0.05, 1.0, 3
        c = beta_clock(rho, t_bound, d)
        for t in (0.0, 5.0, 59.9, 60.0, 100.0):
            assert c.value(t) == pytest.approx(t + min(rho * t, t_bound * d))

    def test_distance_zero_is_perfect(self):
        c = beta_clock(0.05, 1.0, 0)
        assert c.value(17.3) == 17.3

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            beta_clock(0.05, 1.0, -1)


class TestExecutionPair:
    def _pair(self, n=8, prefix=2, rho=0.05):
        params = SystemParams.for_network(n, rho=rho)
        edges = path_edges(n)
        mask = DelayMask(
            {edges[i]: params.max_delay for i in range(prefix)}, params.max_delay
        )
        return build_execution_pair(list(range(n)), edges, mask, 0, params), params

    def test_skew_targets(self):
        pair, params = self._pair()
        assert pair.skew_target(0) == 0.0
        assert pair.skew_target(7) == pytest.approx(params.max_delay * 5)

    def test_full_skew_time(self):
        pair, params = self._pair()
        d = pair.dists[7]
        expected = params.max_delay * d * (1 + 1 / params.rho)
        assert pair.full_skew_time(7, params.rho) == pytest.approx(expected)

    def test_beta_builds_exactly_target_skew(self):
        pair, params = self._pair()
        t = 2 * pair.full_skew_time(7, params.rho)
        h0 = pair.beta_clocks[0].value(t)
        h7 = pair.beta_clocks[7].value(t)
        assert h7 - h0 == pytest.approx(pair.skew_target(7))

    def test_beta_delays_legal_on_path(self):
        pair, params = self._pair()
        policy = pair.beta_policy
        for t in (0.0, 1.0, 10.0, 50.0, 120.0, 500.0):
            for u, v in path_edges(8):
                for a, b in ((u, v), (v, u)):
                    d = policy.delay(a, b, t)
                    assert -1e-9 <= d <= params.max_delay + 1e-9

    def test_beta_constrained_delays_in_mask_window(self):
        pair, params = self._pair(prefix=3)
        for t in (0.0, 5.0, 40.0, 200.0):
            for e in list(pair.mask.constrained):
                lo, hi = pair.mask.legal_range(*e, rho=params.rho)
                for a, b in (e, (e[1], e[0])):
                    d = pair.beta_policy.delay(a, b, t)
                    assert lo - 1e-9 <= d <= hi + 1e-9

    def test_new_edge_fallback_delay(self):
        pair, params = self._pair()
        # Direction not in the static edge set -> constant fallback.
        d = pair.beta_policy.delay(0, 7, 3.0)
        assert d == pytest.approx(0.5 * params.max_delay)

    def test_bad_fallback_rejected(self):
        pair, params = self._pair()
        with pytest.raises(ValueError):
            BetaDelayPolicy(pair.alpha_policy, pair.beta_clocks, fallback=5.0)

    def test_disconnected_reference_rejected(self):
        params = SystemParams.for_network(4)
        mask = DelayMask({}, params.max_delay)
        with pytest.raises(ValueError, match="unreachable"):
            build_execution_pair([0, 1, 2, 3], [(0, 1)], mask, 0, params)


@settings(max_examples=40)
@given(
    n=st.integers(min_value=4, max_value=12),
    prefix=st.integers(min_value=0, max_value=4),
    rho=st.floats(min_value=0.01, max_value=0.3),
    t=st.floats(min_value=0.0, max_value=400.0),
)
def test_property_beta_delays_always_legal_path(n, prefix, rho, t):
    """Part II of Lemma 4.2, numerically, over random path masks/times."""
    prefix = min(prefix, n - 2)
    params = SystemParams.for_network(n, rho=rho)
    edges = path_edges(n)
    mask = DelayMask(
        {edges[i]: params.max_delay for i in range(prefix)}, params.max_delay
    )
    pair = build_execution_pair(list(range(n)), edges, mask, 0, params)
    for u, v in edges:
        for a, b in ((u, v), (v, u)):
            d = pair.beta_policy.delay(a, b, t)
            assert -1e-9 <= d <= params.max_delay + 1e-9
            if mask.is_constrained(a, b):
                lo, hi = mask.legal_range(a, b, params.rho)
                assert lo - 1e-9 <= d <= hi + 1e-9


@settings(max_examples=25)
@given(
    n=st.integers(min_value=8, max_value=20),
    k=st.integers(min_value=1, max_value=3),
    rho=st.floats(min_value=0.02, max_value=0.2),
    t=st.floats(min_value=0.0, max_value=300.0),
)
def test_property_beta_delays_always_legal_two_chain(n, k, rho, t):
    """Same legality property on the Figure 1 two-chain topology (which
    exercises the same-layer plateau edge)."""
    edges, chains = two_chain_edges(n)
    a = chains["A"]
    if k > (len(a) - 3) // 2:
        k = (len(a) - 3) // 2
    if k < 1:
        return
    params = SystemParams.for_network(n, rho=rho)
    blocked = {}
    for i in range(k):
        blocked[(a[i], a[i + 1])] = params.max_delay
        blocked[(a[-1 - i], a[-2 - i])] = params.max_delay
    mask = DelayMask(blocked, params.max_delay)
    pair = build_execution_pair(list(range(n)), edges, mask, a[k], params)
    for u, v in edges:
        for s, r in ((u, v), (v, u)):
            d = pair.beta_policy.delay(s, r, t)
            assert -1e-9 <= d <= params.max_delay + 1e-9
