"""Round-trip serialization of SystemParams / ExperimentConfig.

These dicts are the identity used by the content-addressed result store
(:mod:`repro.sweep.store`), so the round-trip must be *exact*: rebuild from
``to_dict`` output, serialize again, and get the same dict — through a real
``json`` encode/decode, not just in memory.
"""

from __future__ import annotations

import json

import pytest

from repro import ParameterError, SystemParams
from repro.harness import (
    AdversaryRef,
    ChurnRef,
    ExperimentConfig,
    OracleRef,
    SerializationError,
    configs,
)
from repro.harness.registry import (
    ADVERSARY_BUILDERS,
    CHURN_BUILDERS,
    ORACLE_BUILDERS,
    jsonify,
)
from repro.network.churn import RandomRewirer, ScriptedChurn
from repro.network.topology import path_edges


def roundtrip(cfg: ExperimentConfig) -> ExperimentConfig:
    wire = json.loads(json.dumps(cfg.to_dict()))
    return ExperimentConfig.from_dict(wire)


class TestSystemParams:
    def test_roundtrip_exact(self):
        p = SystemParams.for_network(12, rho=0.03)
        d = p.to_dict()
        q = SystemParams.from_dict(json.loads(json.dumps(d)))
        assert q == p
        assert q.to_dict() == d

    def test_from_dict_validates(self):
        d = SystemParams.for_network(8).to_dict()
        d["rho"] = 0.9
        with pytest.raises(ParameterError, match="rho"):
            SystemParams.from_dict(d)

    def test_unknown_field_rejected(self):
        d = SystemParams.for_network(8).to_dict()
        d["bogus"] = 1
        with pytest.raises(ParameterError, match="bogus"):
            SystemParams.from_dict(d)


CANNED = [
    ("static_path", lambda: configs.static_path(8, horizon=20.0)),
    ("static_ring", lambda: configs.static_ring(8, horizon=20.0)),
    ("large_ring", lambda: configs.large_ring(8, horizon=20.0)),
    ("static_grid", lambda: configs.static_grid(2, 4, horizon=20.0)),
    ("backbone_churn", lambda: configs.backbone_churn(8, horizon=20.0)),
    ("rotating_backbone", lambda: configs.rotating_backbone(8, horizon=50.0, window=12.0)),
    ("mobile_network", lambda: configs.mobile_network(8, horizon=20.0)),
    ("edge_insertion", lambda: configs.edge_insertion(8, t_insert=10.0, horizon=30.0)),
    ("flapping_edges", lambda: configs.flapping_edges(8, horizon=20.0)),
    ("two_chain_insertion", lambda: configs.two_chain_insertion(10, t_insert=10.0, horizon=30.0)),
    ("adversarial_drift", lambda: configs.adversarial_drift(8, horizon=20.0)),
    ("adversarial_delay", lambda: configs.adversarial_delay(8, horizon=20.0)),
    ("greedy_topology", lambda: configs.greedy_topology(8, horizon=20.0)),
    ("combined_adversary", lambda: configs.combined_adversary(8, horizon=20.0)),
]


class TestExperimentConfig:
    @pytest.mark.parametrize("name,make", CANNED, ids=[c[0] for c in CANNED])
    def test_all_canned_configs_roundtrip(self, name, make):
        cfg = make()
        d = cfg.to_dict()
        cfg2 = roundtrip(cfg)
        assert cfg2.to_dict() == d

    def test_scripted_churn_roundtrips(self):
        cfg = ExperimentConfig(
            params=SystemParams.for_network(4),
            initial_edges=path_edges(4),
            churn=[ScriptedChurn([(5.0, "add", 0, 3), (9.0, "remove", 0, 3)])],
            horizon=12.0,
        )
        cfg2 = roundtrip(cfg)
        (proc,) = cfg2.churn
        assert isinstance(proc, ScriptedChurn)
        assert proc.events == [(5.0, "add", 0, 3), (9.0, "remove", 0, 3)]

    def test_callable_clock_spec_rejected_with_registry_hint(self):
        cfg = configs.static_path(4)
        cfg.clock_spec = lambda i, p, rng, h: None
        with pytest.raises(SerializationError, match="CLOCK_BUILDERS"):
            cfg.to_dict()

    def test_callable_delay_and_discovery_specs_rejected(self):
        cfg = configs.static_path(4)
        cfg.delay_spec = lambda p, rng: None
        with pytest.raises(SerializationError, match="DELAY_BUILDERS"):
            cfg.to_dict()
        cfg = configs.static_path(4)
        cfg.discovery_spec = lambda p, rng: None
        with pytest.raises(SerializationError, match="DISCOVERY_BUILDERS"):
            cfg.to_dict()

    def test_bare_churn_callable_rejected_with_registry_hint(self):
        cfg = configs.static_path(4)
        cfg.churn = [lambda p, rng: ScriptedChurn([])]
        with pytest.raises(SerializationError, match="CHURN_BUILDERS"):
            cfg.to_dict()

    def test_concrete_churn_instance_rejected_with_registry_hint(self):
        import numpy as np

        cfg = configs.static_path(4)
        cfg.churn = [RandomRewirer(4, 1, 5.0, np.random.default_rng(0))]
        with pytest.raises(SerializationError, match="register_churn"):
            cfg.to_dict()

    def test_unknown_field_rejected(self):
        d = configs.static_path(4).to_dict()
        d["bogus"] = True
        with pytest.raises(ValueError, match="bogus"):
            ExperimentConfig.from_dict(d)

    def test_unknown_churn_kind_rejected(self):
        d = configs.static_path(4).to_dict()
        d["churn"] = [{"kind": "mystery"}]
        with pytest.raises(ValueError, match="mystery"):
            ExperimentConfig.from_dict(d)


class TestChurnRef:
    def test_unknown_name_rejected_eagerly(self):
        with pytest.raises(KeyError, match="no_such_churn"):
            ChurnRef("no_such_churn", {})

    def test_every_canned_churn_class_has_a_registered_builder(self):
        # Every ChurnProcess a canned workload can produce (ScriptedChurn
        # serializes as a concrete instance instead) must be reachable via
        # CHURN_BUILDERS, or round-tripping its configs would be impossible.
        assert {
            "random_rewirer",
            "edge_flapper",
            "mobile_geometric",
            "rotating_backbone",
        } <= set(CHURN_BUILDERS)

    def test_edge_flapper_ref_builds_and_roundtrips(self, params8, rng):
        from repro.network.churn import EdgeFlapper

        ref = ChurnRef(
            "edge_flapper",
            {"edges": [(0, 3), (2, 5)], "up": 4.0, "down": 3.0, "horizon": 30.0},
        )
        assert isinstance(ref(params8, rng), EdgeFlapper)
        wire = json.loads(json.dumps(ref.to_dict()))
        assert ChurnRef.from_dict(wire).to_dict() == ref.to_dict()

    def test_mobile_geometric_ref_builds_and_roundtrips(self, params8, rng):
        from repro.network.churn import MobileGeometricChurn

        ref = ChurnRef(
            "mobile_geometric",
            {
                "positions": [[0.1 * i, 0.1 * i] for i in range(8)],
                "radius": 0.4,
                "speed": 0.01,
                "update_interval": 2.0,
                "protected": path_edges(8),
                "horizon": 30.0,
            },
        )
        assert isinstance(ref(params8, rng), MobileGeometricChurn)
        wire = json.loads(json.dumps(ref.to_dict()))
        assert ChurnRef.from_dict(wire).to_dict() == ref.to_dict()

    def test_kwargs_canonicalised(self):
        ref = ChurnRef("edge_flapper", {"edges": [(0, 2)], "up": 3, "down": 2.0})
        assert ref.kwargs["edges"] == [[0, 2]]
        assert ref.to_dict() == json.loads(json.dumps(ref.to_dict()))

    def test_ref_is_a_working_builder(self, params8, rng):
        ref = ChurnRef(
            "random_rewirer",
            {"n": 8, "k_extra": 2, "interval": 5.0, "protected": path_edges(8)},
        )
        proc = ref(params8, rng)
        assert isinstance(proc, RandomRewirer)

    def test_jsonify_rejects_opaque_objects(self):
        with pytest.raises(SerializationError, match="object"):
            jsonify({"x": object()})


class TestAdversaryRef:
    def test_registered_builders_present(self):
        assert {
            "adaptive_drift",
            "adaptive_delay",
            "greedy_topology",
            "combined",
        } <= set(ADVERSARY_BUILDERS)

    def test_adversary_field_roundtrips(self):
        cfg = configs.greedy_topology(8, horizon=20.0)
        d = cfg.to_dict()
        assert d["adversary"]["kind"] == "ref"
        cfg2 = roundtrip(cfg)
        assert isinstance(cfg2.adversary, AdversaryRef)
        assert cfg2.to_dict() == d

    def test_no_adversary_serializes_as_null(self):
        d = configs.static_path(4).to_dict()
        assert d["adversary"] is None
        assert roundtrip(configs.static_path(4)).adversary is None

    def test_concrete_adversary_rejected_with_registry_hint(self):
        from repro.adversary import DelayAdversary

        cfg = configs.static_path(4)
        cfg.adversary = DelayAdversary()
        with pytest.raises(SerializationError, match="ADVERSARY_BUILDERS"):
            cfg.to_dict()

    def test_adversary_builder_callable_rejected(self):
        from repro.adversary import DelayAdversary

        cfg = configs.static_path(4)
        cfg.adversary = lambda p, rng: DelayAdversary()
        with pytest.raises(SerializationError, match="register_adversary"):
            cfg.to_dict()

    def test_unknown_adversary_entry_kind_rejected(self):
        d = configs.static_path(4).to_dict()
        d["adversary"] = {"kind": "mystery"}
        with pytest.raises(ValueError, match="mystery"):
            ExperimentConfig.from_dict(d)


class TestOracleRef:
    def test_standard_builder_registered(self):
        assert "standard" in ORACLE_BUILDERS

    def test_unknown_name_rejected_eagerly(self):
        with pytest.raises(KeyError, match="no_such_oracle"):
            OracleRef("no_such_oracle", {})

    def test_oracle_field_roundtrips(self):
        cfg = configs.static_path(4)
        cfg.oracle = OracleRef("standard", {"bound_scale": 0.5, "monitors": ["progress"]})
        cfg.record = False
        d = cfg.to_dict()
        assert d["oracle"]["kind"] == "ref" and d["record"] is False
        cfg2 = roundtrip(cfg)
        assert isinstance(cfg2.oracle, OracleRef)
        assert cfg2.record is False
        assert cfg2.to_dict() == d

    def test_ref_is_a_working_builder(self, params8, rng):
        from repro.oracle import StreamingOracle

        oracle = OracleRef("standard", {"monitors": ["global_skew"]})(params8, rng)
        assert isinstance(oracle, StreamingOracle)
        assert [m.name for m in oracle.monitors] == ["global_skew"]

    def test_no_oracle_serializes_as_null(self):
        d = configs.static_path(4).to_dict()
        assert d["oracle"] is None and d["record"] is True
        assert roundtrip(configs.static_path(4)).oracle is None

    def test_concrete_oracle_rejected_with_registry_hint(self):
        from repro.oracle import StreamingOracle

        cfg = configs.static_path(4)
        cfg.oracle = StreamingOracle(cfg.params, interval=1.0)
        with pytest.raises(SerializationError, match="ORACLE_BUILDERS"):
            cfg.to_dict()

    def test_oracle_builder_callable_rejected(self):
        from repro.oracle import StreamingOracle

        cfg = configs.static_path(4)
        cfg.oracle = lambda p, rng: StreamingOracle(p, interval=1.0)
        with pytest.raises(SerializationError, match="register_oracle"):
            cfg.to_dict()

    def test_unknown_oracle_entry_kind_rejected(self):
        d = configs.static_path(4).to_dict()
        d["oracle"] = {"kind": "mystery"}
        with pytest.raises(ValueError, match="mystery"):
            ExperimentConfig.from_dict(d)
