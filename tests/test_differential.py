"""Tests for the differential baseline harness (repro.oracle.differential)."""

from __future__ import annotations

import pytest

from repro.core import skew_bounds as sb
from repro.harness import AdversaryRef, configs
from repro.oracle import differential_config, run_differential


@pytest.fixture(scope="module")
def result():
    return run_differential(differential_config(10, seed=2))


class TestFrozenSchedule:
    def test_schedule_is_the_scripted_insertion(self, result):
        cfg = differential_config(10, seed=2)
        (t, op, u, v), = result.schedule
        assert op == "add" and (u, v) == (0, 9)
        assert t == pytest.approx(cfg.churn[0].events[0][0])

    def test_every_contender_ran(self, result):
        assert set(result.outcomes) == {"dcsa", "max", "static", "free"}
        for outcome in result.outcomes.values():
            assert outcome.max_global_skew > 0.0

    def test_randomized_clock_spec_rejected(self):
        cfg = differential_config(8)
        cfg.clock_spec = "random_walk"
        with pytest.raises(ValueError, match="deterministic clock"):
            run_differential(cfg)

    def test_randomized_delay_spec_rejected(self):
        cfg = differential_config(8)
        cfg.delay_spec = "uniform"
        with pytest.raises(ValueError, match="deterministic delay"):
            run_differential(cfg)

    def test_adaptive_adversary_rejected(self):
        cfg = differential_config(8)
        cfg.adversary = AdversaryRef("adaptive_delay", {})
        with pytest.raises(ValueError, match="adversary"):
            run_differential(cfg)


class TestOrderings:
    def test_all_paper_orderings_hold(self, result):
        assert result.check_ordering() == []

    def test_dcsa_local_skew_at_most_max_syncs(self, result):
        dcsa = result.outcome("dcsa")
        max_sync = result.outcome("max")
        assert dcsa.max_local_skew <= max_sync.max_local_skew + 1e-9

    def test_dcsa_within_global_bound_free_running_not_synced(self, result):
        dcsa = result.outcome("dcsa")
        free = result.outcome("free")
        assert dcsa.max_global_skew <= sb.global_skew_bound(result.params) + 1e-9
        # The unsynchronized baseline drifts well past every contender.
        assert free.max_global_skew > dcsa.max_global_skew
        assert free.jumps == 0

    def test_dcsa_respects_masking_floor(self, result):
        dcsa = result.outcome("dcsa")
        floor = sb.masking_skew_floor(result.params, 1)
        assert result.horizon >= sb.masking_min_time(result.params, 1)
        assert dcsa.max_local_skew >= floor - 1e-9

    def test_missing_dcsa_reported(self, result):
        from repro.oracle import DifferentialResult

        empty = DifferentialResult(params=result.params, horizon=result.horizon)
        assert empty.check_ordering() == ["no 'dcsa' outcome to order against"]


class TestChurnFreezing:
    def test_rng_churn_becomes_one_scripted_schedule(self):
        # backbone_churn uses an RNG-driven rewirer; freezing must turn it
        # into explicit events replayed identically to every contender.
        cfg = configs.backbone_churn(6, horizon=30.0, seed=4, clock_spec="split")
        cfg.delay_spec = "max"
        res = run_differential(cfg, algorithms=("dcsa", "max"))
        assert len(res.schedule) > 0
        assert set(res.outcomes) == {"dcsa", "max"}
        assert res.check_ordering() == []
