"""Tests for causal tracing (repro.tracing): spans, export, forensics.

The load-bearing guarantees:

* **Neutrality** — running with the tracer attached leaves every
  deterministic run metric bit-identical on the golden workloads.  Hooks
  draw no RNG and schedule nothing; the flight span id rides the
  delivery record's observer slot, which physics never reads.
* **Accounting** — one flight span per transport send; delivered /
  dropped / still-in-flight statuses reconcile exactly with the
  transport's own counters (including the end-of-run fixup for the
  optimistically-closed spans of messages the horizon caught mid-air).
* **Export** — the Chrome-trace JSON validates (``ph``/``ts`` on every
  event) and carries at least one flow event per delivered message.
* **Forensics** — on a seeded broken-bound DelayAdversary run,
  ``explain`` attributes the violation to adversary-masked flights on
  the violating edge's causal path.
"""

from __future__ import annotations

import json

import pytest

from repro.harness import configs, run_experiment
from repro.harness.registry import OracleRef
from repro.sim.tracing import TraceRecorder
from repro.tracing import (
    SPAN_DISCOVER,
    SPAN_FLIGHT,
    SPAN_JUMP,
    SPAN_TIMER,
    SPAN_VIOLATION,
    STATUS_DONE,
    STATUS_DROPPED,
    STATUS_PENDING,
    SpanTable,
    Tracer,
    activate_tracing,
    active_tracer,
    chrome_trace_events,
    deactivate_tracing,
    explain_result,
    export_chrome_trace,
    trace_session,
)
from repro.tracing.spans import STRIDE


# --------------------------------------------------------------------- #
# Span table (storage layer)
# --------------------------------------------------------------------- #


class TestSpanTable:
    def test_flat_stride8_layout(self):
        t = SpanTable()
        sid = t.append(SPAN_FLIGHT, 1, 2, 0.5, 1.5, -1, STATUS_PENDING)
        assert sid == 0
        assert len(t) == 1
        assert len(t.data) == STRIDE
        assert t.data[0] == SPAN_FLIGHT
        assert t.data[3] == 0.5 and t.data[4] == 1.5

    def test_close_updates_t1_and_status(self):
        t = SpanTable()
        sid = t.append(SPAN_FLIGHT, 1, 2, 0.5, 9.9, -1, STATUS_PENDING)
        t.close(sid, 1.25, STATUS_DONE)
        span = t.row(sid)
        assert span.t1 == 1.25
        assert span.status == STATUS_DONE
        assert span.duration == pytest.approx(0.75)

    def test_capacity_drops_and_counts(self):
        t = SpanTable(capacity=2)
        assert t.append(SPAN_TIMER, 0, -1, 0.0, 0.0, -1, STATUS_DONE) == 0
        assert t.append(SPAN_TIMER, 0, -1, 1.0, 1.0, -1, STATUS_DONE) == 1
        assert t.append(SPAN_TIMER, 0, -1, 2.0, 2.0, -1, STATUS_DONE) == -1
        assert len(t) == 2
        assert t.dropped == 1

    def test_columns_and_counts(self):
        t = SpanTable()
        t.append(SPAN_FLIGHT, 1, 2, 0.0, 1.0, -1, STATUS_DONE)
        t.append(SPAN_JUMP, 2, -1, 1.0, 1.0, 0, STATUS_DONE, 0.25)
        assert t.kind == [SPAN_FLIGHT, SPAN_JUMP]
        assert t.node == [1, 2]
        assert t.detail[1] == 0.25
        assert t.count(SPAN_FLIGHT) == 1
        assert t.kind_counts[SPAN_JUMP] == 1
        assert [s.kind for s in list(t.rows())] == [SPAN_FLIGHT, SPAN_JUMP]


class TestTracerHooks:
    def test_flight_lifecycle_carried_sid(self):
        tr = Tracer()
        sid = tr.flight_send(3, 4, 1.0, 1.5)
        assert sid == 0
        assert tr.table.row(sid).status == STATUS_PENDING
        tr.flight_deliver(sid, 1.5)
        assert tr.table.row(sid).status == STATUS_DONE
        assert tr.current == sid  # delivery enters the causal scope
        tr.reset_current()
        assert tr.current == -1

    def test_flight_drop(self):
        tr = Tracer()
        sid = tr.flight_send(3, 4, 1.0, 1.5)
        tr.flight_drop(sid, 1.2)
        span = tr.table.row(sid)
        assert span.status == STATUS_DROPPED
        assert span.t1 == 1.2

    def test_capacity_returns_minus_one_and_closes_are_noops(self):
        tr = Tracer(capacity=1)
        assert tr.flight_send(0, 1, 0.0, 1.0) == 0
        sid = tr.flight_send(1, 2, 0.0, 1.0)
        assert sid == -1
        assert tr.table.dropped == 1
        tr.flight_deliver(sid, 1.0)  # must not raise
        assert len(tr.table) == 1

    def test_timer_parents_spans(self):
        tr = Tracer()
        tr.timer_fired(5, 2.0)
        timer_sid = tr.current
        assert tr.table.row(timer_sid).kind == SPAN_TIMER
        flight = tr.flight_send(5, 6, 2.0, 2.5)
        assert tr.table.row(flight).parent == timer_sid
        tr.jump(5, 2.0, 0.125)
        jump = tr.table.row(len(tr.table) - 1)
        assert jump.kind == SPAN_JUMP and jump.parent == timer_sid
        assert jump.detail == 0.125

    def test_ambient_activation(self):
        assert active_tracer() is None
        tracer = activate_tracing()
        try:
            assert active_tracer() is tracer
        finally:
            deactivate_tracing()
        assert active_tracer() is None
        with trace_session() as tr:
            assert active_tracer() is tr
        assert active_tracer() is None


# --------------------------------------------------------------------- #
# Sim integration
# --------------------------------------------------------------------- #


WORKLOADS = [
    ("static_path", lambda: configs.static_path(8, horizon=60.0, seed=3)),
    ("backbone_churn", lambda: configs.backbone_churn(8, horizon=60.0, seed=5)),
    ("adversarial_drift", lambda: configs.adversarial_drift(8, horizon=60.0, seed=7)),
]


class TestSimTracing:
    @pytest.mark.parametrize("name,make", WORKLOADS, ids=[w[0] for w in WORKLOADS])
    def test_traced_runs_bit_identical(self, name, make):
        baseline = run_experiment(make())
        with trace_session():
            traced = run_experiment(make())
        assert traced.max_global_skew == baseline.max_global_skew
        assert traced.max_local_skew == baseline.max_local_skew
        assert traced.total_jumps() == baseline.total_jumps()
        assert traced.events_dispatched == baseline.events_dispatched
        assert traced.transport_stats == baseline.transport_stats

    def test_flight_accounting_reconciles_with_transport(self):
        with trace_session() as tr:
            res = run_experiment(
                configs.backbone_churn(8, horizon=60.0, seed=5)
            )
        assert res.spans is tr.table
        table = tr.table
        st = res.transport_stats
        kinds, status = table.kind, table.status
        by_status = {STATUS_DONE: 0, STATUS_PENDING: 0, STATUS_DROPPED: 0}
        for i in range(len(table)):
            if kinds[i] == SPAN_FLIGHT:
                by_status[status[i]] += 1
        # One span per send attempt (in-flight sends + failed sends).
        assert sum(by_status.values()) == st["sent"]
        assert table.dropped == 0
        assert by_status[STATUS_DONE] == st["delivered"]
        # Dropped >= send-time failures + in-flight drops: messages the
        # horizon caught mid-flight over an already-failed edge are doomed
        # and finalize_tracing closes them DROPPED too; only genuinely
        # live flights stay PENDING.
        assert (
            by_status[STATUS_DROPPED]
            >= st["dropped_no_edge"] + st["dropped_removed"]
        )
        assert by_status[STATUS_PENDING] + by_status[STATUS_DROPPED] == (
            st["sent"] - st["delivered"]
        )

    def test_mid_flight_edge_removal_closes_span_dropped(self):
        """A flight whose edge churns away mid-air must export DROPPED.

        Regression: ``finalize_tracing`` used to re-mark every still-queued
        delivery PENDING; for a destination removed before the horizon the
        flight then pointed at a track that may not exist in the Perfetto
        export.  The doomed flight (the delivery-time check would drop it
        anyway) must instead be closed ``STATUS_DROPPED`` at the horizon.
        """
        from repro.network.channels import ConstantDelay
        from repro.network.discovery import ConstantDiscovery
        from repro.network.graph import DynamicGraph
        from repro.network.transport import Transport
        from repro.sim.simulator import Simulator

        sim = Simulator()
        graph = DynamicGraph(range(2), [(0, 1)])
        transport = Transport(
            sim,
            graph,
            delay_policy=ConstantDelay(1.0),
            discovery_policy=ConstantDiscovery(0.5),
            max_delay=2.0,
            discovery_bound=2.0,
        )
        tracer = Tracer()
        transport.attach_tracer(tracer)
        transport.send(0, 1, "payload")  # delivery due at t=1.0
        table = tracer.table
        (sid,) = [i for i in range(len(table)) if table.kind[i] == SPAN_FLIGHT]
        # Optimistically closed DONE at send time (the common case).
        assert table.status[sid] == STATUS_DONE
        graph.remove_edge(0, 1, 0.4)  # churn strikes mid-flight
        sim.run_until(0.5)  # horizon before the delivery time
        transport.finalize_tracing()
        assert table.status[sid] == STATUS_DROPPED
        assert table.t1[sid] == 0.5  # closed at the horizon, not left open
        # The export stays self-consistent: no span lost, ph/ts everywhere.
        events = chrome_trace_events(table)
        assert all("ph" in e and "ts" in e for e in events)
        # A genuinely live flight (edge intact) still finalizes PENDING.
        graph.add_edge(0, 1, 0.5)
        transport.send(0, 1, "payload2")
        transport.finalize_tracing()
        flights = [i for i in range(len(table)) if table.kind[i] == SPAN_FLIGHT]
        assert table.status[flights[-1]] == STATUS_PENDING
        assert table.status[sid] == STATUS_DROPPED  # first verdict sticks

    def test_dag_has_parented_spans(self):
        with trace_session() as tr:
            run_experiment(configs.static_path(8, horizon=60.0, seed=3))
        table = tr.table
        kinds, parents = table.kind, table.parent
        timer_parented_flights = sum(
            1
            for i in range(len(table))
            if kinds[i] == SPAN_FLIGHT
            and parents[i] >= 0
            and kinds[parents[i]] == SPAN_TIMER
        )
        delivery_parented = sum(
            1
            for i in range(len(table))
            if parents[i] >= 0 and kinds[parents[i]] == SPAN_FLIGHT
        )
        assert timer_parented_flights > 0  # ticks cause sends
        assert delivery_parented > 0  # deliveries cause jumps/sends
        assert table.count(SPAN_JUMP) > 0
        assert table.count(SPAN_DISCOVER) > 0

    def test_untraced_run_records_nothing(self):
        res = run_experiment(configs.static_path(8, horizon=30.0, seed=3))
        assert res.spans is None


# --------------------------------------------------------------------- #
# Live integration
# --------------------------------------------------------------------- #


class TestLiveTracing:
    def test_live_flights_traced_and_closed(self):
        with trace_session() as tr:
            res = run_experiment(
                configs.live_ring(4, duration=0.5, sample_interval=0.1, seed=1)
            )
        table = tr.table
        assert res.spans is table
        flights = table.count(SPAN_FLIGHT)
        assert flights > 0
        # Loopback, no churn: every sent message is delivered and closed.
        kinds, status = table.kind, table.status
        closed = sum(
            1
            for i in range(len(table))
            if kinds[i] == SPAN_FLIGHT and status[i] == STATUS_DONE
        )
        assert closed == res.transport_stats["delivered"]
        assert table.count(SPAN_TIMER) > 0


# --------------------------------------------------------------------- #
# Chrome-trace / Perfetto export
# --------------------------------------------------------------------- #


class TestExport:
    @pytest.fixture(scope="class")
    def traced_run(self):
        with trace_session() as tr:
            res = run_experiment(configs.static_ring(8, horizon=60.0, seed=3))
        return res, tr.table

    def test_every_event_has_ph_and_ts(self, traced_run):
        _, table = traced_run
        events = chrome_trace_events(table)
        assert events
        for ev in events:
            assert "ph" in ev and "ts" in ev

    def test_flow_event_per_delivered_message(self, traced_run):
        res, table = traced_run
        events = chrome_trace_events(table)
        starts = [e for e in events if e["ph"] == "s"]
        finishes = [e for e in events if e["ph"] == "f"]
        delivered = res.transport_stats["delivered"]
        assert len(starts) == delivered
        assert len(finishes) == delivered
        # Flow pairs share the flight's span id.
        assert {e["id"] for e in starts} == {e["id"] for e in finishes}
        for e in finishes:
            assert e.get("bp") == "e"

    def test_exported_file_is_valid_chrome_json(self, traced_run, tmp_path):
        res, table = traced_run
        path = str(tmp_path / "trace.json")
        counts = export_chrome_trace(table, path)
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        assert "traceEvents" in doc
        assert doc["displayTimeUnit"] == "ms"
        assert counts["events"] == len(doc["traceEvents"])
        assert counts["flows"] == 2 * res.transport_stats["delivered"]
        assert counts["spans_lost"] == 0
        # One named track (process metadata) per node.
        names = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(names) >= res.config.params.n


# --------------------------------------------------------------------- #
# Forensics (repro explain)
# --------------------------------------------------------------------- #


def _broken_bound_adversarial_run():
    cfg = configs.adversarial_delay(8, horizon=120.0, seed=1)
    from dataclasses import replace

    cfg = replace(
        cfg,
        record=False,
        oracle=OracleRef("standard", {"bound_scale": 0.3}),
    )
    with trace_session():
        return run_experiment(cfg)


class TestForensics:
    @pytest.fixture(scope="class")
    def explained(self):
        res = _broken_bound_adversarial_run()
        reports = explain_result(res, max_reports=2)
        return res, reports

    def test_violations_are_anchored_in_the_dag(self, explained):
        res, _ = explained
        rep = res.oracle_report
        assert rep is not None and not rep.ok
        assert res.spans is not None
        assert res.spans.count(SPAN_VIOLATION) >= len(rep.violations)

    def test_top_cause_is_a_masked_causal_chain(self, explained):
        res, reports = explained
        assert reports and res.cause_reports == reports
        top = reports[0].top
        assert top is not None
        assert top.kind == "causal_chain"
        # The adversary's fingerprint: flights on the last-contact path
        # held at max_delay.
        assert top.data["masked_count"] >= 1
        masked = [c for c in reports[0].causes if c.kind == "masked_flight"]
        assert masked
        # The chain's masked flights are the same spans the per-flight
        # masked_flight causes blame (the adversary held them at max_delay).
        masked_span_ids = {c.spans[0] for c in masked}
        assert set(top.data["masked"]) & masked_span_ids
        for cause in masked:
            assert cause.data["duration"] == pytest.approx(
                cause.data["max_delay"], rel=0.05
            )

    def test_report_window_and_describe(self, explained):
        _, reports = explained
        report = reports[0]
        lo, hi = report.window
        assert lo <= hi == report.violation.time
        text = report.describe()
        assert "causal_chain" in text
        d = report.to_dict()
        assert d["causes"][0]["kind"] == "causal_chain"
        assert json.dumps(d)  # JSON-serialisable

    def test_explain_without_violations_is_empty(self):
        with trace_session():
            res = run_experiment(configs.static_path(8, horizon=30.0, seed=3))
        assert explain_result(res) == []
        assert res.cause_reports == []


# --------------------------------------------------------------------- #
# Legacy recorder windows (forensics corroboration path)
# --------------------------------------------------------------------- #


class TestTraceRecorderFilter:
    def test_window_edges_are_inclusive(self):
        rec = TraceRecorder()
        for t in (0.0, 1.0, 2.0, 3.0):
            rec.record(t, "jump", 0, t)
        window = rec.filter(kind="jump", start=1.0, end=2.0)
        assert [r.time for r in window] == [1.0, 2.0]
        # Adjacent windows both see the boundary record.
        assert [r.time for r in rec.filter(start=2.0, end=3.0)] == [2.0, 3.0]

    def test_subject_and_kind_filters_compose(self):
        rec = TraceRecorder()
        rec.record(0.5, "jump", 1, 0.1)
        rec.record(0.6, "send", 1, 2)
        rec.record(0.7, "jump", 2, 0.2)
        assert len(rec.filter(kind="jump")) == 2
        assert len(rec.filter(kind="jump", subject=1)) == 1
        assert rec.filter(kind="send", subject=1)[0].time == 0.6

    def test_capped_recorder_only_searches_retained(self):
        rec = TraceRecorder(capacity=2)
        for t in (0.0, 1.0, 2.0):
            rec.record(t, "jump", 0)
        assert rec.dropped == 1
        # t=0.0 was evicted: the window can't resurrect it.
        assert [r.time for r in rec.filter(start=0.0, end=2.0)] == [1.0, 2.0]

    def test_records_sort_chronologically(self):
        rec = TraceRecorder()
        rec.record(2.0, "send", 1)
        rec.record(1.0, "jump", 0)
        assert [r.time for r in sorted(rec.records)] == [1.0, 2.0]
