"""Tests for seeded random-stream management."""

from __future__ import annotations

import numpy as np

from repro.sim.rng import RngFactory


class TestRngFactory:
    def test_same_seed_same_streams(self):
        a = RngFactory(42)
        b = RngFactory(42)
        ra = a.spawn("x").random(8)
        rb = b.spawn("x").random(8)
        assert np.array_equal(ra, rb)

    def test_spawn_order_determines_streams(self):
        a = RngFactory(42)
        b = RngFactory(42)
        a1 = a.spawn("first").random(4)
        a2 = a.spawn("second").random(4)
        b1 = b.spawn("renamed").random(4)  # name is cosmetic
        b2 = b.spawn("other").random(4)
        assert np.array_equal(a1, b1)
        assert np.array_equal(a2, b2)

    def test_streams_are_independent(self):
        f = RngFactory(7)
        s1 = f.spawn().random(64)
        s2 = f.spawn().random(64)
        assert not np.array_equal(s1, s2)

    def test_different_seeds_differ(self):
        assert not np.array_equal(
            RngFactory(1).spawn().random(8), RngFactory(2).spawn().random(8)
        )

    def test_counter(self):
        f = RngFactory(0)
        assert f.streams_spawned == 0
        f.spawn()
        f.spawn()
        assert f.streams_spawned == 2

    def test_none_seed_allowed(self):
        f = RngFactory(None)
        assert f.spawn().random() >= 0.0
