"""Shared fixtures and hypothesis settings for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro import SystemParams

# Keep property tests fast and deterministic in CI.
settings.register_profile(
    "ci",
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("ci")


@pytest.fixture
def params8() -> SystemParams:
    """Small validated parameter set (n=8, defaults)."""
    return SystemParams.for_network(8)


@pytest.fixture
def params16() -> SystemParams:
    """Medium validated parameter set (n=16, defaults)."""
    return SystemParams.for_network(16)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic numpy Generator."""
    return np.random.default_rng(12345)
