"""Sweep-engine smoke test: a tiny sweep must agree across both backends.

This is the fast end-to-end check `scripts/smoke.sh` runs standalone; it is
also part of the regular suite so CI catches backend divergence.
"""

from __future__ import annotations

from repro.harness import configs
from repro.sweep import ResultStore, SweepEngine

HORIZON = 20.0


def _four_configs():
    return [
        configs.static_path(5, horizon=HORIZON, seed=0),
        configs.static_path(5, horizon=HORIZON, seed=1),
        configs.static_ring(6, horizon=HORIZON, seed=0),
        configs.backbone_churn(6, horizon=HORIZON, seed=0),
    ]


def test_four_config_sweep_parity_across_backends(tmp_path):
    serial = SweepEngine(processes=None).run(_four_configs())
    parallel = SweepEngine(processes=2).run(_four_configs())
    assert len(serial) == len(parallel) == 4
    for s_row, p_row in zip(serial.rows, parallel.rows):
        assert s_row.key == p_row.key
        assert s_row.metrics == p_row.metrics
    # And a cached rerun costs nothing.
    store = ResultStore(tmp_path / "cache")
    SweepEngine(store=store).run(_four_configs())
    assert store.writes == 4
    rerun_store = ResultStore(tmp_path / "cache")
    rerun = SweepEngine(store=rerun_store).run(_four_configs())
    assert rerun.cached_count == 4 and rerun_store.writes == 0
