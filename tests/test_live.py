"""Tests for the live asyncio runtime (repro.live).

Real wall-clock sessions are kept under a second each; the loopback
channel with zero jitter is deterministic enough for exact message
conservation checks, while UDP runs only assert coarse liveness (and skip
gracefully where the sandbox forbids sockets).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.harness import ExperimentConfig, RuntimeRef, configs
from repro.harness.runner import Experiment, run_experiment
from repro.live import (
    ChannelError,
    LiveClock,
    LoopbackChannel,
    build_live_clocks,
    build_live_runtime,
)
from repro.network.churn import ScriptedChurn


class TestLoopbackSession:
    def test_session_reports_oracle_ok(self):
        res = run_experiment(
            configs.live_ring(8, duration=0.6, sample_interval=0.1, seed=1)
        )
        rep = res.oracle_report
        assert rep is not None and rep.ok
        assert rep.checks > 0
        assert res.events_dispatched > 0
        # Zero jitter, no churn: every sent message is delivered.
        assert res.transport_stats["sent"] > 0
        assert res.transport_stats["sent"] == res.transport_stats["delivered"]
        assert "oracle: OK" in res.summary()

    def test_every_node_participates(self):
        cfg = configs.live_ring(8, duration=0.5, seed=2)
        live = build_live_runtime(cfg).run()
        p = cfg.params
        for view in live.nodes.values():
            assert view.messages_sent > 0
            # L advances at least at hardware rate >= (1 - rho) real time.
            assert view.logical_clock(live.elapsed) >= (1.0 - p.rho) * 0.5
        assert live.elapsed == pytest.approx(cfg.horizon, abs=0.3)

    def test_artificial_drift_rates_respect_envelope(self):
        cfg = configs.live_ring(8, duration=0.3, seed=5)
        live = build_live_runtime(cfg).run()
        rates = {view.clock.rate for view in live.nodes.values()}
        assert len(rates) > 1  # drift actually injected
        p = cfg.params
        for rate in rates:
            assert 1.0 - p.rho <= rate <= 1.0 + p.rho

    def test_no_oracle_session(self):
        res = run_experiment(configs.live_ring(8, duration=0.3, oracle=False))
        assert res.oracle_report is None

    def test_free_running_sends_nothing(self):
        res = run_experiment(
            configs.live_ring(8, duration=0.3, algorithm="free", oracle=False)
        )
        assert res.transport_stats["sent"] == 0
        assert res.total_jumps() == 0

    @pytest.mark.parametrize("algorithm", ["max", "static"])
    def test_baseline_algorithms_run_live(self, algorithm):
        res = run_experiment(
            configs.live_ring(8, duration=0.4, algorithm=algorithm)
        )
        assert res.oracle_report is not None and res.oracle_report.ok
        assert res.transport_stats["delivered"] > 0

    def test_jittered_loopback_still_conformant(self):
        res = run_experiment(
            configs.live_ring(8, duration=0.5, jitter=0.01, seed=7)
        )
        assert res.oracle_report is not None and res.oracle_report.ok
        assert res.transport_stats["delivered"] > 0


class TestLiveChurn:
    def test_scripted_churn_injects_discoveries(self):
        cfg = configs.live_churn_ring(8, duration=0.8, seed=2)
        res = run_experiment(cfg)
        assert res.oracle_report is not None and res.oracle_report.ok
        # 8 ring edges at t=0, chord add + chord remove mid-session.
        assert res.graph.edge_events == 10
        assert not res.graph.has_edge(0, 4)

    def test_failed_churn_event_fails_the_session_loudly(self):
        """A dead auxiliary task must not yield a vacuous oracle_ok."""
        from repro.network.graph import GraphError

        cfg = replace(
            configs.live_ring(4, duration=0.3),
            churn=[ScriptedChurn([(0.05, "add", 0, 99)])],  # unknown node
        )
        with pytest.raises(GraphError):
            build_live_runtime(cfg).run()

    def test_churn_discoveries_reach_the_cores(self):
        cfg = configs.live_churn_ring(8, duration=0.8, seed=3)
        live = build_live_runtime(cfg).run()
        # After the remove at 80% of the session, the chord endpoints no
        # longer believe in the edge (DiscoverRemove was dispatched).
        assert 4 not in live.nodes[0].core.upsilon
        assert 0 not in live.nodes[4].core.upsilon


class TestUdpSession:
    def test_udp_round_trip(self):
        cfg = configs.live_ring(4, duration=0.5, sample_interval=0.1, channel="udp")
        try:
            res = run_experiment(cfg)
        except ChannelError as exc:  # pragma: no cover - sandboxed CI
            pytest.skip(f"UDP sockets unavailable: {exc}")
        assert res.transport_stats["delivered"] > 0
        assert res.oracle_report is not None and res.oracle_report.ok


class TestDriverValidation:
    def _cfg(self, **overrides) -> ExperimentConfig:
        return replace(configs.live_ring(8, duration=0.2), **overrides)

    def test_recorder_rejected(self):
        with pytest.raises(ValueError, match="recorder"):
            build_live_runtime(self._cfg(record=True))

    def test_trace_rejected(self):
        with pytest.raises(ValueError, match="trace"):
            build_live_runtime(self._cfg(trace=True))

    def test_adversary_rejected(self):
        from repro.harness.registry import AdversaryRef

        cfg = self._cfg(adversary=AdversaryRef("adaptive_delay", {}))
        with pytest.raises(ValueError, match="adversar"):
            build_live_runtime(cfg)

    def test_non_scripted_churn_rejected(self):
        from repro.harness.registry import ChurnRef

        churn = ChurnRef(
            "edge_flapper", {"edges": [[0, 2]], "up": 0.1, "down": 0.1}
        )
        with pytest.raises(ValueError, match="ScriptedChurn"):
            build_live_runtime(self._cfg(churn=[churn]))

    def test_unknown_channel_rejected(self):
        with pytest.raises(ValueError, match="channel"):
            build_live_runtime(self._cfg(), channel="carrier-pigeon")

    def test_experiment_class_rejects_live_configs(self):
        with pytest.raises(ValueError, match="sim"):
            Experiment(self._cfg())

    def test_unknown_runtime_string_rejected(self):
        cfg = replace(configs.static_ring(5, horizon=5.0), runtime="warp")
        with pytest.raises(ValueError, match="unknown runtime"):
            run_experiment(cfg)


class TestRuntimeSerialization:
    def test_live_config_round_trips(self):
        cfg = configs.live_ring(8, duration=1.0, jitter=0.002)
        data = cfg.to_dict()
        assert data["runtime"]["kind"] == "ref"
        assert data["runtime"]["name"] == "live"
        clone = ExperimentConfig.from_dict(data)
        assert isinstance(clone.runtime, RuntimeRef)
        assert clone.runtime.kwargs["jitter"] == 0.002
        assert clone.to_dict() == data

    def test_sim_default_serializes_as_string(self):
        cfg = configs.static_ring(5, horizon=5.0)
        data = cfg.to_dict()
        assert data["runtime"] == "sim"
        assert ExperimentConfig.from_dict(data).runtime == "sim"

    def test_unknown_runtime_ref_rejected(self):
        with pytest.raises(KeyError, match="unknown runtime"):
            RuntimeRef("warp", {})


class TestLiveClocks:
    def test_rate_must_be_positive(self):
        with pytest.raises(ValueError):
            LiveClock(0.0)

    def test_inverse_is_exact(self):
        clock = LiveClock(1.05)
        assert clock.h_at(2.0) == pytest.approx(2.1)
        assert clock.real_delay(2.1) == pytest.approx(2.0)

    @pytest.mark.parametrize("spec", ["perfect", "split", "alternating", "uniform"])
    def test_specs_respect_envelope(self, spec):
        import numpy as np

        clocks = build_live_clocks(spec, 8, 0.05, np.random.default_rng(0))
        assert sorted(clocks) == list(range(8))
        for c in clocks.values():
            assert 0.95 - 1e-12 <= c.rate <= 1.05 + 1e-12
        if spec == "perfect":
            assert all(c.rate == 1.0 for c in clocks.values())
        if spec == "split":
            assert clocks[0].rate > 1.0 > clocks[7].rate


class TestLoopbackChannelUnit:
    def test_negative_jitter_rejected(self):
        with pytest.raises(ChannelError):
            LoopbackChannel(jitter=-0.1)

    def test_send_before_open_rejected(self):
        with pytest.raises(ChannelError, match="not opened"):
            LoopbackChannel().send(0, 1, (0.0, 0.0))


class TestLiveChurnValidation:
    def test_bad_op_rejected(self):
        cfg = replace(
            configs.live_ring(8, duration=0.2),
            churn=[ScriptedChurn([(0.1, "add", 0, 2)])],
        )
        runtime = build_live_runtime(cfg)  # valid script builds fine
        assert runtime._churn_events == [(0.1, "add", 0, 2)]
