"""Sim<->live parity of the sans-IO protocol cores.

The contract that lets one core run under both drivers is: given the same
``(now_h, event)`` input stream, a core emits the same effect stream and
ends in the same state, no matter which driver feeds it.  The drivers only
have to agree on *inputs* (which the deterministic zero-jitter loopback
configuration provides); the cores guarantee the rest.  These tests pin
the contract from both directions:

* **sim side** (property test over :mod:`repro.testing.strategies`
  configs): run a generated experiment with per-node effect logs enabled,
  then replay each node's logged events into a freshly built core and
  require the identical effect sequence and final state;
* **live side**: run a zero-jitter loopback asyncio session with effect
  capture and replay its logs the same way -- through cores built by the
  live driver itself, proving the two drivers construct interchangeable
  cores from one config.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.protocol import FreeRunningCore, JumpL, ProtocolCore
from repro.harness import configs
from repro.harness.runner import build_experiment
from repro.live.driver import build_live_runtime
from repro.testing.strategies import experiment_configs


def replay_into(core: ProtocolCore, log) -> list[tuple]:
    """Feed a recorded ``(now_h, event, effects)`` log into a fresh core.

    Applies deferred jumps exactly like a driver; returns the effect
    tuples the replay produced.
    """
    replayed = []
    for now_h, event, _effects in log:
        out = core.handle(now_h, event)
        for eff in out:
            if isinstance(eff, JumpL):
                core.apply_jump(eff.new_value)
        replayed.append(tuple(out))
    return replayed


def rebuild_core(node_id: int, core: ProtocolCore) -> ProtocolCore:
    """Construct a fresh core of the same class and construction kwargs."""
    kwargs = {}
    if not isinstance(core, FreeRunningCore):
        kwargs["tick_stagger"] = core._tick_stagger
    return type(core)(node_id, core.params, **kwargs)


def assert_replay_matches(node_id: int, core: ProtocolCore, log) -> None:
    fresh = rebuild_core(node_id, core)
    replayed = replay_into(fresh, log)
    recorded = [effects for _now_h, _event, effects in log]
    assert replayed == recorded, f"node {node_id}: effect streams diverge"
    # Same inputs => same terminal state, bit for bit.
    assert fresh.h_last == core.h_last
    assert fresh.logical_clock_at(core.h_last) == core.logical_clock_at(core.h_last)
    assert fresh.max_estimate_at(core.h_last) == core.max_estimate_at(core.h_last)
    assert fresh.jumps == core.jumps
    assert fresh.total_jump == core.total_jump


class TestSimDriverParity:
    @given(experiment_configs(min_n=4, max_n=8, horizon=25.0, churny=True))
    @settings(max_examples=6, deadline=None)
    def test_effect_streams_replay_identically(self, cfg):
        """Property: every node's sim effect log replays bit-identically.

        The Start dispatch happens inside experiment construction (before
        logging can be enabled), but Start only arms the first tick and
        mutates no lazy state, so replaying from the first logged event is
        state-exact; the live-side test below covers Start too.
        """
        exp = build_experiment(cfg)
        for node in exp.nodes.values():
            node.effect_log = []
        exp.run()
        for i, node in exp.nodes.items():
            assert_replay_matches(i, node.core, node.effect_log)

    @pytest.mark.parametrize("algorithm", ["max", "static", "free"])
    def test_baseline_cores_replay_identically(self, algorithm):
        cfg = configs.static_ring(6, horizon=20.0, seed=4, algorithm=algorithm)
        exp = build_experiment(cfg)
        for node in exp.nodes.values():
            node.effect_log = []
        exp.run()
        for i, node in exp.nodes.items():
            assert_replay_matches(i, node.core, node.effect_log)


class TestLiveDriverParity:
    def test_live_effect_streams_replay_identically(self):
        """A zero-jitter loopback session's logs replay through cores built
        by a second, never-run live driver instance with the same seed --
        same inputs, same effects, same state, across driver boundaries."""
        cfg = configs.live_ring(8, duration=0.6, seed=3, sample_interval=0.1)
        live = build_live_runtime(cfg, capture_effects=True).run()
        assert live.oracle_report is not None and live.oracle_report.ok
        twin = build_live_runtime(cfg)  # identical seed => identical cores
        assert sorted(live.effect_logs) == sorted(twin.nodes)
        for i, log in live.effect_logs.items():
            assert len(log) > 0
            ran = live.nodes[i].core
            fresh = twin.nodes[i].core
            replayed = replay_into(fresh, log)
            assert replayed == [effects for _h, _e, effects in log]
            assert fresh.h_last == ran.h_last
            assert fresh.jumps == ran.jumps
            assert fresh.messages_sent == ran.messages_sent
            assert fresh.logical_clock_at(ran.h_last) == ran.logical_clock_at(
                ran.h_last
            )
