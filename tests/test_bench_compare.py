"""Tests for ``scripts/bench_compare.py`` (benchmark artifact diffing)."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "bench_compare.py"
_spec = importlib.util.spec_from_file_location("bench_compare", _SCRIPT)
assert _spec is not None and _spec.loader is not None
bench_compare = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_compare)


def _artifact(**over) -> dict:
    base = {
        "bench": "trace_overhead",
        "version": "1.0.0",
        "ok": True,
        "overhead": 0.05,
        "traced_seconds": 1.0,
        "events_per_sec": 100_000,
        "spans": 1000,
    }
    base.update(over)
    return base


def _write(tmp_path, name, doc) -> str:
    path = tmp_path / name
    path.write_text(json.dumps(doc), encoding="utf-8")
    return str(path)


class TestDirection:
    @pytest.mark.parametrize(
        "path,sense",
        [
            ("traced_seconds", -1),
            ("overhead", -1),
            ("spans_dropped", -1),
            ("spans_lost", -1),
            ("events_per_sec", 1),
            ("points[0].events_per_sec", 1),
            ("spans", 0),
            ("n", 0),
            ("oracle_violations", -1),
            ("oracle_worst_margin", 1),
            ("margin_envelope", 1),
            ("margin_time_envelope", 0),
        ],
    )
    def test_metric_name_maps_to_direction(self, path, sense):
        assert bench_compare.direction(path) == sense

    def test_flatten_recurses_dicts_and_lists(self):
        doc = {"a": {"b": 1}, "pts": [{"x": 2.0}, {"x": 3.0}]}
        flat = dict(bench_compare.flatten(doc))
        assert flat == {"a.b": 1, "pts[0].x": 2.0, "pts[1].x": 3.0}


class TestCompare:
    def test_identical_artifacts_pass(self):
        report = bench_compare.compare(_artifact(), _artifact(), 0.10)
        assert report["ok"] and report["regressions"] == []
        assert report["median_directional_delta"] == 0.0

    def test_directional_regression_beyond_threshold_fails(self):
        report = bench_compare.compare(
            _artifact(), _artifact(traced_seconds=1.25), 0.10
        )
        assert not report["ok"]
        assert report["regressions"] == ["traced_seconds"]

    def test_improvement_and_informational_drift_pass(self):
        new = _artifact(traced_seconds=0.5, events_per_sec=200_000, spans=5000)
        report = bench_compare.compare(_artifact(), new, 0.10)
        assert report["ok"]
        assert {r["metric"] for r in report["changes"]} == {
            "traced_seconds", "events_per_sec", "spans",
        }

    def test_bool_true_to_false_is_a_regression(self):
        report = bench_compare.compare(_artifact(), _artifact(ok=False), 0.10)
        assert report["regressions"] == ["ok"]
        report = bench_compare.compare(_artifact(ok=False), _artifact(), 0.10)
        assert report["ok"]


class TestCli:
    def test_exit_codes(self, tmp_path, capsys):
        old = _write(tmp_path, "old.json", _artifact())
        same = _write(tmp_path, "same.json", _artifact())
        worse = _write(tmp_path, "worse.json", _artifact(overhead=0.2))
        other = _write(tmp_path, "other.json", _artifact(bench="live_overhead"))
        bumped = _write(tmp_path, "bumped.json", _artifact(version="2.0.0"))

        assert bench_compare.main([old, same]) == 0
        assert "no regressions" in capsys.readouterr().out
        assert bench_compare.main([old, worse]) == 1
        assert "REGRESSED: overhead" in capsys.readouterr().out
        assert bench_compare.main([old, other]) == 2
        assert bench_compare.main([old, bumped]) == 2
        assert "--allow-version-mismatch" in capsys.readouterr().err
        assert bench_compare.main([old, bumped, "--allow-version-mismatch"]) == 0

    def test_json_output_round_trips(self, tmp_path, capsys):
        old = _write(tmp_path, "old.json", _artifact())
        worse = _write(tmp_path, "worse.json", _artifact(traced_seconds=2.0))
        assert bench_compare.main([old, worse, "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["bench"] == "trace_overhead"
        assert report["regressions"] == ["traced_seconds"]

    def test_unreadable_artifact_exits_2(self, tmp_path):
        missing = str(tmp_path / "nope.json")
        ok = _write(tmp_path, "ok.json", _artifact())
        with pytest.raises(SystemExit):
            bench_compare.main([missing, ok])


def _ledger_record(**over) -> dict:
    base = {
        "ledger_version": 1,
        "version": "1.0.0",
        "kind": "run",
        "workload": "static_path",
        "run_id": "abc123",
        "recorded_unix": 1.0,
        "bundle_path": "/tmp/b",
        "oracle_ok": True,
        "oracle_violations": 0,
        "oracle_worst_margin": 5.0,
        "margin_envelope": 5.0,
        "margin_time_envelope": 30.0,
        "events_per_sec": 50_000,
        "wall_seconds": 0.5,
    }
    base.update(over)
    return base


class TestLedgerRecords:
    def test_ledger_records_compare_directionally(self, tmp_path, capsys):
        old = _write(tmp_path, "a.json", _ledger_record())
        worse = _write(
            tmp_path,
            "b.json",
            _ledger_record(
                run_id="def456",
                oracle_worst_margin=1.0,
                margin_envelope=1.0,
                margin_time_envelope=10.0,
            ),
        )
        assert bench_compare.main([old, worse]) == 1
        out = capsys.readouterr().out
        assert "ledger:static_path" in out
        assert "oracle_worst_margin" in out
        # Identity/timestamp fields never diff; margin times stay
        # informational.
        assert "run_id" not in out
        assert "recorded_unix" not in out
        report = bench_compare.compare(
            bench_compare._load(old), bench_compare._load(worse), 0.10
        )
        assert "margin_time_envelope" not in report["regressions"]

    def test_different_workloads_never_compare(self, tmp_path, capsys):
        a = _write(tmp_path, "a.json", _ledger_record())
        b = _write(
            tmp_path, "b.json", _ledger_record(workload="backbone_churn")
        )
        assert bench_compare.main([a, b]) == 2
        assert "different benchmarks" in capsys.readouterr().err
