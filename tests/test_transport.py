"""Tests for the transport: delivery contract, FIFO, drops, discovery."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.network.channels import ConstantDelay, UniformDelay
from repro.network.discovery import ConstantDiscovery
from repro.network.graph import DynamicGraph
from repro.network.transport import Transport
from repro.sim.simulator import Simulator

import numpy as np


class RecordingNode:
    """Minimal NodeInterface capturing everything it is told."""

    def __init__(self, sim):
        self.sim = sim
        self.messages = []
        self.added = []
        self.removed = []

    def on_message(self, sender, payload):
        self.messages.append((self.sim.now, sender, payload))

    def on_discover_add(self, other):
        self.added.append((self.sim.now, other))

    def on_discover_remove(self, other):
        self.removed.append((self.sim.now, other))


def make_net(edges, n=4, delay=0.5, disc=1.0, max_delay=1.0, bound=2.0):
    sim = Simulator()
    graph = DynamicGraph(range(n), edges)
    tr = Transport(
        sim,
        graph,
        delay_policy=ConstantDelay(delay),
        discovery_policy=ConstantDiscovery(disc),
        max_delay=max_delay,
        discovery_bound=bound,
    )
    nodes = {i: RecordingNode(sim) for i in range(n)}
    for i, node in nodes.items():
        tr.register_node(i, node)
    return sim, graph, tr, nodes


class TestDelivery:
    def test_message_delivered_with_delay(self):
        sim, graph, tr, nodes = make_net([(0, 1)])
        tr.send(0, 1, "hello")
        sim.run_until(1.0)
        assert nodes[1].messages == [(0.5, 0, "hello")]
        assert tr.stats.delivered == 1

    def test_delay_bound_enforced(self):
        sim, graph, tr, nodes = make_net([(0, 1)], delay=2.0, max_delay=1.0)
        with pytest.raises(ValueError, match="delay policy"):
            tr.send(0, 1, "x")

    def test_send_without_edge_dropped_and_discovered(self):
        sim, graph, tr, nodes = make_net([(0, 1)])
        tr.send(0, 2, "lost")
        sim.run_until(2.0)
        assert nodes[2].messages == []
        assert tr.stats.dropped_no_edge == 1
        # Sender learns the edge is absent within the discovery bound.
        assert (1.0, 2) in nodes[0].removed

    def test_message_dropped_when_edge_removed_in_flight(self):
        sim, graph, tr, nodes = make_net([(0, 1)])
        tr.send(0, 1, "doomed")
        sim.schedule_at(0.2, lambda: graph.remove_edge(0, 1, sim.now))
        sim.run_until(3.0)
        assert nodes[1].messages == []
        assert tr.stats.dropped_removed == 1

    def test_message_survives_unrelated_removal(self):
        sim, graph, tr, nodes = make_net([(0, 1), (2, 3)])
        tr.send(0, 1, "ok")
        sim.schedule_at(0.2, lambda: graph.remove_edge(2, 3, sim.now))
        sim.run_until(1.0)
        assert [m[2] for m in nodes[1].messages] == ["ok"]

    def test_unknown_node_registration_rejected(self):
        sim, graph, tr, nodes = make_net([(0, 1)])
        with pytest.raises(ValueError):
            tr.register_node(99, RecordingNode(sim))
        with pytest.raises(ValueError):
            tr.register_node(0, RecordingNode(sim))


class TestFIFO:
    def test_fifo_order_preserved_under_random_delays(self):
        sim = Simulator()
        graph = DynamicGraph(range(2), [(0, 1)])
        rng = np.random.default_rng(7)
        tr = Transport(
            sim,
            graph,
            delay_policy=UniformDelay(0.0, 1.0, rng),
            discovery_policy=ConstantDiscovery(1.0),
            max_delay=1.0,
            discovery_bound=2.0,
        )
        nodes = {i: RecordingNode(sim) for i in range(2)}
        for i, node in nodes.items():
            tr.register_node(i, node)
        for i in range(50):
            sim.schedule_at(i * 0.05, lambda i=i: tr.send(0, 1, i))
        sim.run_until(10.0)
        received = [m[2] for m in nodes[1].messages]
        assert received == list(range(50))

    def test_fifo_clamp_never_exceeds_bound(self):
        """Even when FIFO pushes a delivery later, it stays within send+T."""
        sim = Simulator()
        graph = DynamicGraph(range(2), [(0, 1)])

        class Alternating(ConstantDelay):
            """1.0 for the first message, 0.0 afterwards (FIFO clash)."""

            def __init__(self):
                super().__init__(0.0)
                self.first = True

            def delay(self, u, v, t):
                if self.first:
                    self.first = False
                    return 1.0
                return 0.0

        tr = Transport(
            sim,
            graph,
            delay_policy=Alternating(),
            discovery_policy=ConstantDiscovery(1.0),
            max_delay=1.0,
            discovery_bound=2.0,
        )
        node = RecordingNode(sim)
        tr.register_node(1, node)
        tr.register_node(0, RecordingNode(sim))
        tr.send(0, 1, "a")  # delay 1.0 -> arrives 1.0
        sim.schedule_at(0.5, lambda: tr.send(0, 1, "b"))  # delay 0 -> clamped to 1.0
        sim.run_until(2.0)
        times = [m[0] for m in node.messages]
        assert times == [1.0, 1.0]
        assert [m[2] for m in node.messages] == ["a", "b"]
        # Clamped delivery still within the bound of its own send (0.5 + 1.0).
        assert times[1] <= 0.5 + 1.0


class TestDiscovery:
    def test_initial_edges_announced(self):
        sim, graph, tr, nodes = make_net([(0, 1)])
        tr.announce_initial_edges()
        sim.run_until(2.0)
        assert (1.0, 1) in nodes[0].added
        assert (1.0, 0) in nodes[1].added

    def test_add_discovered_by_both_endpoints(self):
        sim, graph, tr, nodes = make_net([])
        sim.schedule_at(1.0, lambda: graph.add_edge(2, 3, sim.now))
        sim.run_until(5.0)
        assert (2.0, 3) in nodes[2].added
        assert (2.0, 2) in nodes[3].added

    def test_remove_discovered_by_both_endpoints(self):
        sim, graph, tr, nodes = make_net([(1, 2)])
        sim.schedule_at(1.0, lambda: graph.remove_edge(1, 2, sim.now))
        sim.run_until(5.0)
        assert (2.0, 2) in nodes[1].removed
        assert (2.0, 1) in nodes[2].removed

    def test_transient_change_skipped(self):
        """An add reversed before its discovery latency may go unnoticed."""
        sim, graph, tr, nodes = make_net([])
        sim.schedule_at(1.0, lambda: graph.add_edge(0, 1, sim.now))
        sim.schedule_at(1.5, lambda: graph.remove_edge(0, 1, sim.now))
        sim.run_until(5.0)
        # The add's discovery (due t=2.0) sees the edge gone -> skipped.
        assert nodes[0].added == []
        # The remove's discovery (due t=2.5) sees edge absent -> delivered.
        assert any(other == 1 for _, other in nodes[0].removed)
        assert tr.stats.discoveries_skipped >= 2

    def test_latency_bound_enforced(self):
        sim = Simulator()
        graph = DynamicGraph(range(2), [])
        tr = Transport(
            sim,
            graph,
            delay_policy=ConstantDelay(0.1),
            discovery_policy=ConstantDiscovery(5.0),  # exceeds bound 2.0
            max_delay=1.0,
            discovery_bound=2.0,
        )
        tr.register_node(0, RecordingNode(sim))
        tr.register_node(1, RecordingNode(sim))
        with pytest.raises(ValueError, match="latency"):
            graph.add_edge(0, 1, 0.0)

    def test_absence_discovery_deduplicated(self):
        sim, graph, tr, nodes = make_net([])
        tr.send(0, 1, "a")
        tr.send(0, 1, "b")
        tr.send(0, 1, "c")
        sim.run_until(3.0)
        # Three failed sends produce one discover_remove.
        assert len(nodes[0].removed) == 1


@given(st.lists(st.floats(min_value=0.0, max_value=5.0), min_size=1, max_size=30))
def test_property_fifo_under_arbitrary_send_times(send_offsets):
    """Messages on one directed link always arrive in send order."""
    sim = Simulator()
    graph = DynamicGraph(range(2), [(0, 1)])
    rng = np.random.default_rng(3)
    tr = Transport(
        sim,
        graph,
        delay_policy=UniformDelay(0.0, 1.0, rng),
        discovery_policy=ConstantDiscovery(1.0),
        max_delay=1.0,
        discovery_bound=2.0,
    )
    sink = RecordingNode(sim)
    tr.register_node(1, sink)
    tr.register_node(0, RecordingNode(sim))
    t = 0.0
    for i, off in enumerate(sorted(send_offsets)):
        t = max(t, off)
        sim.schedule_at(t, lambda i=i: tr.send(0, 1, i))
    sim.run_until(20.0)
    seq = [m[2] for m in sink.messages]
    assert seq == sorted(seq)
    assert len(seq) == len(send_offsets)
