"""Tests for the cancellable event queue and event ordering."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.events import (
    PRIORITY_DELIVERY,
    PRIORITY_SAMPLE,
    PRIORITY_TIMER,
    PRIORITY_TOPOLOGY,
    ScheduledEvent,
)
from repro.sim.queue import EventQueue


def _noop() -> None:
    pass


class TestOrdering:
    def test_pops_in_time_order(self):
        q = EventQueue()
        q.push(3.0, 0, _noop, "c")
        q.push(1.0, 0, _noop, "a")
        q.push(2.0, 0, _noop, "b")
        assert [q.pop().label for _ in range(3)] == ["a", "b", "c"]

    def test_priority_breaks_time_ties(self):
        q = EventQueue()
        q.push(1.0, PRIORITY_TIMER, _noop, "timer")
        q.push(1.0, PRIORITY_TOPOLOGY, _noop, "topology")
        q.push(1.0, PRIORITY_SAMPLE, _noop, "sample")
        q.push(1.0, PRIORITY_DELIVERY, _noop, "delivery")
        order = [q.pop().label for _ in range(4)]
        assert order == ["topology", "delivery", "timer", "sample"]

    def test_insertion_order_breaks_full_ties(self):
        q = EventQueue()
        for i in range(10):
            q.push(1.0, 0, _noop, str(i))
        assert [q.pop().label for _ in range(10)] == [str(i) for i in range(10)]

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(5.0, 0, _noop)
        q.push(2.0, 0, _noop)
        assert q.peek_time() == 2.0

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None


class TestCancellation:
    def test_cancelled_event_skipped(self):
        q = EventQueue()
        h1 = q.push(1.0, 0, _noop, "a")
        q.push(2.0, 0, _noop, "b")
        assert q.cancel(h1) is True
        assert q.pop().label == "b"

    def test_double_cancel_returns_false(self):
        q = EventQueue()
        h = q.push(1.0, 0, _noop)
        assert q.cancel(h) is True
        assert q.cancel(h) is False

    def test_len_counts_live_only(self):
        q = EventQueue()
        h = q.push(1.0, 0, _noop)
        q.push(2.0, 0, _noop)
        assert len(q) == 2
        q.cancel(h)
        assert len(q) == 1
        assert q.raw_size == 2  # lazy deletion keeps the heap entry

    def test_peek_skips_cancelled_head(self):
        q = EventQueue()
        h = q.push(1.0, 0, _noop)
        q.push(3.0, 0, _noop)
        q.cancel(h)
        assert q.peek_time() == 3.0

    def test_clear(self):
        q = EventQueue()
        q.push(1.0, 0, _noop)
        q.clear()
        assert len(q) == 0 and q.pop() is None


class TestScheduledEvent:
    def test_sort_key(self):
        e = ScheduledEvent(1.5, 2, 7, _noop)
        assert e.sort_key == (1.5, 2, 7)

    def test_lt_uses_key(self):
        a = ScheduledEvent(1.0, 0, 0, _noop)
        b = ScheduledEvent(1.0, 0, 1, _noop)
        assert a < b and not (b < a)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            st.integers(min_value=0, max_value=3),
        ),
        min_size=1,
        max_size=60,
    )
)
def test_property_pop_sequence_sorted(items):
    """Popped (time, priority, seq) keys are globally non-decreasing."""
    q = EventQueue()
    for t, p in items:
        q.push(t, p, _noop)
    keys = []
    while True:
        ev = q.pop()
        if ev is None:
            break
        keys.append(ev.sort_key)
    assert keys == sorted(keys)
    assert len(keys) == len(items)


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        min_size=2,
        max_size=40,
    ),
    st.data(),
)
def test_property_cancellation_removes_exactly_selected(times, data):
    """Cancelling a random subset yields exactly the complement, in order."""
    q = EventQueue()
    handles = [q.push(t, 0, _noop, str(i)) for i, t in enumerate(times)]
    to_cancel = data.draw(
        st.sets(st.integers(min_value=0, max_value=len(times) - 1))
    )
    for i in to_cancel:
        q.cancel(handles[i])
    popped = []
    while True:
        ev = q.pop()
        if ev is None:
            break
        popped.append(int(ev.label))
    expected = [i for i in range(len(times)) if i not in to_cancel]
    assert sorted(popped) == expected
