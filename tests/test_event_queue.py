"""Tests for the cancellable event queue and event ordering."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.events import (
    KIND_CALLBACK,
    KIND_DELIVER,
    KIND_SAMPLE,
    KIND_TIMER,
    POOLABLE,
    PRIORITY_DELIVERY,
    PRIORITY_SAMPLE,
    PRIORITY_TIMER,
    PRIORITY_TOPOLOGY,
    ScheduledEvent,
)
from repro.sim.queue import EventQueue
from repro.testing.strategies import queue_operations


def _noop() -> None:
    pass


class TestOrdering:
    def test_pops_in_time_order(self):
        q = EventQueue()
        q.push(3.0, 0, _noop, "c")
        q.push(1.0, 0, _noop, "a")
        q.push(2.0, 0, _noop, "b")
        assert [q.pop().label for _ in range(3)] == ["a", "b", "c"]

    def test_priority_breaks_time_ties(self):
        q = EventQueue()
        q.push(1.0, PRIORITY_TIMER, _noop, "timer")
        q.push(1.0, PRIORITY_TOPOLOGY, _noop, "topology")
        q.push(1.0, PRIORITY_SAMPLE, _noop, "sample")
        q.push(1.0, PRIORITY_DELIVERY, _noop, "delivery")
        order = [q.pop().label for _ in range(4)]
        assert order == ["topology", "delivery", "timer", "sample"]

    def test_insertion_order_breaks_full_ties(self):
        q = EventQueue()
        for i in range(10):
            q.push(1.0, 0, _noop, str(i))
        assert [q.pop().label for _ in range(10)] == [str(i) for i in range(10)]

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(5.0, 0, _noop)
        q.push(2.0, 0, _noop)
        assert q.peek_time() == 2.0

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None


class TestCancellation:
    def test_cancelled_event_skipped(self):
        q = EventQueue()
        h1 = q.push(1.0, 0, _noop, "a")
        q.push(2.0, 0, _noop, "b")
        assert q.cancel(h1) is True
        assert q.pop().label == "b"

    def test_double_cancel_returns_false(self):
        q = EventQueue()
        h = q.push(1.0, 0, _noop)
        assert q.cancel(h) is True
        assert q.cancel(h) is False

    def test_len_counts_live_only(self):
        q = EventQueue()
        h = q.push(1.0, 0, _noop)
        q.push(2.0, 0, _noop)
        assert len(q) == 2
        q.cancel(h)
        assert len(q) == 1
        assert q.raw_size == 2  # lazy deletion keeps the heap entry

    def test_peek_skips_cancelled_head(self):
        q = EventQueue()
        h = q.push(1.0, 0, _noop)
        q.push(3.0, 0, _noop)
        q.cancel(h)
        assert q.peek_time() == 3.0

    def test_clear(self):
        q = EventQueue()
        q.push(1.0, 0, _noop)
        q.clear()
        assert len(q) == 0 and q.pop() is None


class TestScheduledEvent:
    def test_sort_key(self):
        e = ScheduledEvent(1.5, 2, 7, _noop)
        assert e.sort_key == (1.5, 2, 7)

    def test_lt_uses_key(self):
        a = ScheduledEvent(1.0, 0, 0, _noop)
        b = ScheduledEvent(1.0, 0, 1, _noop)
        assert a < b and not (b < a)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            st.integers(min_value=0, max_value=3),
        ),
        min_size=1,
        max_size=60,
    )
)
def test_property_pop_sequence_sorted(items):
    """Popped (time, priority, seq) keys are globally non-decreasing."""
    q = EventQueue()
    for t, p in items:
        q.push(t, p, _noop)
    keys = []
    while True:
        ev = q.pop()
        if ev is None:
            break
        keys.append(ev.sort_key)
    assert keys == sorted(keys)
    assert len(keys) == len(items)


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        min_size=2,
        max_size=40,
    ),
    st.data(),
)
def test_property_cancellation_removes_exactly_selected(times, data):
    """Cancelling a random subset yields exactly the complement, in order."""
    q = EventQueue()
    handles = [q.push(t, 0, _noop, str(i)) for i, t in enumerate(times)]
    to_cancel = data.draw(
        st.sets(st.integers(min_value=0, max_value=len(times) - 1))
    )
    for i in to_cancel:
        q.cancel(handles[i])
    popped = []
    while True:
        ev = q.pop()
        if ev is None:
            break
        popped.append(int(ev.label))
    expected = [i for i in range(len(times)) if i not in to_cancel]
    assert sorted(popped) == expected


class TestTypedRecords:
    def test_push_typed_carries_payload(self):
        q = EventQueue()
        ev = q.push_typed(1.0, PRIORITY_DELIVERY, KIND_DELIVER, 3, 4, "msg", 0.5)
        assert (ev.a, ev.b, ev.c, ev.d) == (3, 4, "msg", 0.5)
        assert ev.kind == KIND_DELIVER
        assert q.pop() is ev

    def test_tie_break_follows_insertion_across_kinds(self):
        """Same (time, priority): typed and callback records pop in push order."""
        q = EventQueue()
        pushed = [
            q.push_typed(1.0, 0, KIND_DELIVER, 0, 1, None, None, None, "d"),
            q.push(1.0, 0, _noop, "cb"),
            q.push_typed(1.0, 0, KIND_TIMER, None, "tick", None, None, None, "t"),
            q.push_typed(1.0, 0, KIND_SAMPLE, None, 1.0, None, None, _noop, "s"),
        ]
        assert [q.pop() for _ in range(4)] == pushed

    def test_popped_poolable_record_is_reused(self):
        q = EventQueue()
        ev = q.push_typed(1.0, 0, KIND_DELIVER, 1, 2, "payload", 0.0)
        assert q.pop() is ev
        q.recycle(ev)
        assert q.pool_size == 1
        # Payload references are dropped so the pool never pins objects.
        assert (ev.a, ev.b, ev.c, ev.d, ev.fn) == (None, None, None, None, None)
        again = q.push_typed(2.0, 0, KIND_TIMER, "node", "key")
        assert again is ev  # same object, fresh identity
        assert (again.kind, again.a, again.b) == (KIND_TIMER, "node", "key")
        assert q.pool_size == 0

    def test_callback_records_never_pooled(self):
        q = EventQueue()
        ev = q.push(1.0, 0, _noop)
        assert q.pop() is ev
        q.recycle(ev)
        assert q.pool_size == 0
        assert not POOLABLE[KIND_CALLBACK]

    def test_reused_record_gets_fresh_seq(self):
        """A recycled record re-enters the total order by its new push."""
        q = EventQueue()
        first = q.push_typed(1.0, 0, KIND_DELIVER, 0, 0, None, None)
        q.pop()
        q.recycle(first)
        reused = q.push_typed(2.0, 0, KIND_DELIVER, 9, 9, None, None)
        fresh = q.push_typed(2.0, 0, KIND_DELIVER, 5, 5, None, None)
        assert reused is first  # free list feeds the next push
        assert fresh is not first
        assert reused.seq < fresh.seq  # tie-break by the *new* insertion
        assert q.pop() is reused
        assert q.pop() is fresh

    def test_cancelled_poolable_record_recycled_when_surfaced(self):
        q = EventQueue()
        ev = q.push_typed(1.0, 0, KIND_TIMER, "n", "k")
        q.push(2.0, 0, _noop)
        assert q.cancel(ev) is True
        assert q.pool_size == 0  # still buried in the heap
        assert q.pop().label == ""  # surfaces + recycles the cancelled timer
        assert q.pool_size == 1

    def test_cancel_after_pop_returns_false(self):
        """A fired handle cannot be cancelled (pooling safety contract)."""
        q = EventQueue()
        ev = q.push(1.0, 0, _noop)
        assert q.pop() is ev
        assert q.cancel(ev) is False

    def test_repush_requires_unqueued(self):
        q = EventQueue()
        ev = q.push_typed(1.0, PRIORITY_SAMPLE, KIND_SAMPLE, None, 1.0, None, None, _noop)
        with pytest.raises(ValueError):
            q.repush(ev, 2.0)
        assert q.pop() is ev
        q.repush(ev, 2.0)
        assert q.peek_time() == 2.0
        assert q.pop() is ev

    def test_pop_until_respects_bound_and_recycles_cancelled(self):
        q = EventQueue()
        a = q.push_typed(1.0, 0, KIND_DELIVER, 0, 0, None, None)
        b = q.push_typed(2.0, 0, KIND_DELIVER, 0, 0, None, None)
        c = q.push_typed(5.0, 0, KIND_DELIVER, 0, 0, None, None)
        q.cancel(a)
        assert q.pop_until(3.0) is b
        assert q.pool_size == 1  # a surfaced and was recycled
        assert q.pop_until(3.0) is None  # c is beyond the bound
        assert q.pop_until(5.0) is c


class TestGenerationGuard:
    """Pool-aliasing regression: stale handles must not kill new events."""

    def test_stale_cancel_of_recycled_record_returns_false(self):
        q = EventQueue()
        ev = q.push_typed(1.0, PRIORITY_TIMER, KIND_TIMER, "node", "key")
        stale = (ev, ev.gen)  # caller captures (handle, generation)
        assert q.pop() is ev
        q.recycle(ev)
        # The pool re-issues the same object to an unrelated caller.
        again = q.push_typed(2.0, PRIORITY_TIMER, KIND_TIMER, "other", "k2")
        assert again is ev
        assert again.gen == stale[1] + 1
        # The stale handle passes the `queued` check -- only the
        # generation guard tells the two lives apart.
        assert q.cancel(stale[0], gen=stale[1]) is False
        assert not again.cancelled
        assert q.pop() is again  # the new event still fires

    def test_fresh_gen_cancel_still_works(self):
        q = EventQueue()
        ev = q.push_typed(1.0, PRIORITY_TIMER, KIND_TIMER, "n", "k")
        assert q.cancel(ev, gen=ev.gen) is True
        assert q.pop() is None

    def test_gen_survives_multiple_reissues(self):
        q = EventQueue()
        ev = q.push_typed(1.0, 0, KIND_TIMER, "n", "k")
        gens = [ev.gen]
        for t in (2.0, 3.0, 4.0):
            assert q.pop() is ev
            q.recycle(ev)
            assert q.push_typed(t, 0, KIND_TIMER, "n", "k") is ev
            gens.append(ev.gen)
        assert gens == sorted(set(gens))  # strictly increasing
        for g in gens[:-1]:
            assert q.cancel(ev, gen=g) is False
        assert q.cancel(ev, gen=gens[-1]) is True


class TestLazyDeadline:
    """The batch kernel's in-place timer re-arm (deadline slot ``c``)."""

    def test_stale_head_reinserted_at_live_deadline(self):
        q = EventQueue()
        ev = q.push_typed(1.0, PRIORITY_TIMER, KIND_TIMER, "n", "k", 1.0)
        marker = q.push_typed(2.0, PRIORITY_TIMER, KIND_TIMER, "n", "m", 2.0)
        ev.c = 3.0  # re-armed in place: deadline now beyond the heap entry
        assert q.pop() is marker  # stale head skipped and re-filed
        got = q.pop()
        assert got is ev
        assert got.time == 3.0
        assert q.pop() is None

    def test_pop_until_defers_rearmed_record(self):
        q = EventQueue()
        ev = q.push_typed(1.0, PRIORITY_TIMER, KIND_TIMER, "n", "k", 1.0)
        ev.c = 5.0
        assert q.pop_until(2.0) is None  # nothing fires before the deadline
        assert len(q) == 1  # still live, now filed at t=5
        assert q.pop_until(5.0) is ev

    def test_cancelled_rearmed_record_never_fires(self):
        q = EventQueue()
        ev = q.push_typed(1.0, PRIORITY_TIMER, KIND_TIMER, "n", "k", 1.0)
        ev.c = 4.0
        assert q.cancel(ev) is True
        assert q.pop() is None
        assert q.pool_size == 1  # recycled when the stale entry surfaced


# ------------------------------------------------------------------ #
# Property tests over generated op scripts (repro.testing.strategies)
# ------------------------------------------------------------------ #


@given(queue_operations())
def test_property_cancel_then_pop_interleavings(ops):
    """Arbitrary push/cancel/pop interleavings against a reference model.

    The model is a plain dict of live keys: a push registers
    ``(time, priority, seq)``, a cancel targets a *currently queued* record
    (the ownership discipline under which typed records may be pooled), a
    pop must return exactly the live minimum.  Exercises the lazy-deletion
    heap and free-list reuse together: popped poolable records are
    recycled and their objects re-enter later pushes.
    """
    q = EventQueue()
    live: dict[int, tuple] = {}  # push index -> (time, priority, seq, record)
    queued_idx: list[int] = []  # indexes of still-queued pushes, FIFO
    n_pushed = 0
    for op in ops:
        if op[0] == "push":
            _, t, prio, kind = op
            if kind == KIND_CALLBACK:
                ev = q.push(t, prio, _noop)
            else:
                ev = q.push_typed(t, prio, kind)
            live[n_pushed] = (t, prio, ev.seq, ev)
            queued_idx.append(n_pushed)
            n_pushed += 1
        elif op[0] == "cancel":
            if not queued_idx:
                continue
            i = queued_idx.pop(op[1] % len(queued_idx))
            t, prio, seq, ev = live.pop(i)
            assert q.cancel(ev) is True
            assert q.cancel(ev) is False  # double-cancel reports dead
        else:  # pop
            ev = q.pop()
            if not live:
                assert ev is None
                continue
            expect_i = min(live, key=lambda k: live[k][:3])
            t, prio, seq, expected = live.pop(expect_i)
            queued_idx.remove(expect_i)
            assert ev is expected
            assert (ev.time, ev.priority, ev.seq) == (t, prio, seq)
            q.recycle(ev)  # what the kernel does after dispatch
        assert len(q) == len(live)
    # Drain: the remainder must come out in exact key order.
    remaining = sorted(live.values(), key=lambda r: r[:3])
    for t, prio, seq, expected in remaining:
        got = q.pop()
        assert got is expected
    assert q.pop() is None


@given(queue_operations(max_ops=40))
def test_property_tie_break_stable_under_reuse(ops):
    """All pushes at one timestamp: pops follow push order per priority.

    Forcing every operation to time 0 makes (priority, seq) the whole
    order; record reuse through the pool must never let an old seq leak
    into a new push.
    """
    q = EventQueue()
    order: list[tuple[int, int, ScheduledEvent]] = []  # (priority, push#, ev)
    n = 0
    for op in ops:
        if op[0] == "push":
            _, _t, prio, kind = op
            if kind == KIND_CALLBACK:
                ev = q.push(0.0, prio, _noop)
            else:
                ev = q.push_typed(0.0, prio, kind)
            order.append((prio, n, ev))
            n += 1
        elif op[0] == "pop":
            if order:
                expected = min(order, key=lambda r: r[:2])
                order.remove(expected)
                got = q.pop()
                assert got is expected[2]
                q.recycle(got)
    expected_drain = [ev for _p, _i, ev in sorted(order, key=lambda r: r[:2])]
    drained = []
    while True:
        ev = q.pop()
        if ev is None:
            break
        drained.append(ev)
    assert drained == expected_drain
