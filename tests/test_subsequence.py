"""Tests for the Lemma 4.3 subsequence extraction."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lowerbound.subsequence import select_subsequence, verify_subsequence


class TestBasics:
    def test_monotone_ramp(self):
        xs = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        idx = select_subsequence(xs, c=2.5, d=1.0)
        verify_subsequence(xs, idx, 2.5, 1.0)
        assert idx[0] == 0
        # Gaps between selected values lie in [1.5, 2.5].
        for a, b in zip(idx, idx[1:]):
            assert 1.5 <= xs[b] - xs[a] <= 2.5

    def test_flat_sequence_selects_only_start(self):
        xs = [1.0] * 10
        idx = select_subsequence(xs, c=2.0, d=0.5)
        assert idx == [0]
        verify_subsequence(xs, idx, 2.0, 0.5)

    def test_two_elements(self):
        idx = select_subsequence([0.0, 0.5], c=2.0, d=1.0)
        assert idx == [0]

    def test_zigzag(self):
        xs = [0.0, 1.0, 0.5, 1.5, 1.0, 2.0, 1.5, 2.5, 2.0, 3.0]
        idx = select_subsequence(xs, c=1.4, d=1.0)
        verify_subsequence(xs, idx, 1.4, 1.0)

    def test_length_bound(self):
        xs = [0.1 * i for i in range(101)]  # spans 10.0
        idx = select_subsequence(xs, c=1.0, d=0.1)
        # m <= (x_n - x_1)/(c - d) + 1 = 10/0.9 + 1 ~ 12.1
        assert len(idx) <= 12

    def test_preconditions(self):
        with pytest.raises(ValueError):
            select_subsequence([1.0], 2.0, 1.0)
        with pytest.raises(ValueError):
            select_subsequence([2.0, 1.0], 2.0, 1.0)  # xs[0] > xs[-1]
        with pytest.raises(ValueError):
            select_subsequence([0.0, 1.0], 1.0, 1.0)  # c must exceed d
        with pytest.raises(ValueError):
            select_subsequence([0.0, 5.0], 10.0, 1.0)  # gap exceeds d

    def test_verify_catches_bad_gap(self):
        xs = [0.0, 1.0, 2.0, 3.0]
        with pytest.raises(AssertionError):
            verify_subsequence(xs, [0, 1], c=5.0, d=1.0)  # gap 1.0 < c-d=4.0


@st.composite
def bounded_walks(draw):
    """Sequences with |x_{i+1} - x_i| <= d and x_0 <= x_{n-1}."""
    d = draw(st.floats(min_value=0.1, max_value=2.0))
    n = draw(st.integers(min_value=2, max_value=60))
    steps = draw(
        st.lists(
            st.floats(min_value=-1.0, max_value=1.0),
            min_size=n - 1,
            max_size=n - 1,
        )
    )
    xs = [0.0]
    for s in steps:
        xs.append(xs[-1] + s * d)
    if xs[0] > xs[-1]:
        xs = list(reversed(xs))
    c = draw(st.floats(min_value=1.05, max_value=4.0)) * d
    return xs, c, d


@settings(max_examples=120)
@given(bounded_walks())
def test_property_lemma_4_3_postconditions(case):
    """Both postconditions of Lemma 4.3 hold on random bounded walks."""
    xs, c, d = case
    idx = select_subsequence(xs, c, d)
    verify_subsequence(xs, idx, c, d)
    # Selected indices are strictly increasing and start at 0.
    assert idx[0] == 0
    assert all(b > a for a, b in zip(idx, idx[1:]))
    # Selected values never exceed the last element (the proof's guard).
    assert all(xs[i] <= xs[-1] + 1e-12 for i in idx)
