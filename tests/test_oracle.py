"""Unit and acceptance tests for the streaming conformance oracle.

Covers monitor mechanics on synthetic streams, harness wiring through
``ExperimentConfig.oracle``, and the two headline acceptance scenarios:
a 10x-longer-horizon ``large_ring`` run with the recorder disabled stays
memory-bounded and reports ``oracle_ok=True``, while a deliberately broken
bound surfaces structured violations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import SystemParams
from repro.harness import ExperimentConfig, OracleRef, configs, run_experiment
from repro.network.topology import path_edges
from repro.oracle import (
    MONITOR_FACTORIES,
    GlobalSkewMonitor,
    OracleError,
    ProgressMonitor,
    StreamingOracle,
    Violation,
)


def bind(monitor, params, node_ids, **overrides):
    kwargs = dict(bound_scale=1.0, tolerance=1e-9, max_recorded=100)
    kwargs.update(overrides)
    monitor.bind(params, node_ids, **kwargs)
    return monitor


class TestMonitorsUnit:
    def test_progress_accepts_compliant_stream(self, params8):
        m = bind(ProgressMonitor(), params8, [0, 1])
        m.on_sample(0.0, np.array([0.0, 0.0]), None)
        m.on_sample(1.0, np.array([1.0, 0.9]), None)
        m.on_sample(2.0, np.array([1.6, 1.9]), None)
        assert m.violation_count == 0
        # Two inter-sample steps, two nodes each.
        assert m.checks == 4

    def test_progress_flags_slow_and_decreasing_clocks(self, params8):
        m = bind(ProgressMonitor(), params8, [0, 1])
        m.on_sample(0.0, np.array([0.0, 0.0]), None)
        m.on_sample(1.0, np.array([0.2, -0.5]), None)  # both below 0.5*dt
        assert m.violation_count == 2
        v = m.violations[0]
        assert v.monitor == "progress" and v.time == 1.0
        assert v.observed < v.bound  # rate floor: observed dL too small
        # Margin is negative even though the bound is a floor, not a cap.
        assert v.margin == pytest.approx(0.2 - 0.5)

    def test_global_skew_monitor_margin_and_violation(self, params8):
        m = bind(GlobalSkewMonitor(), params8, list(range(8)), bound_scale=1.0)
        g = params8.global_skew_bound
        clocks = np.zeros(8)
        clocks[3] = g - 1.0
        m.on_sample(1.0, clocks, None)
        assert m.violation_count == 0
        assert m.worst_margin == pytest.approx(1.0)
        clocks[3] = g + 1.0
        m.on_sample(2.0, clocks, None)
        assert m.violation_count == 1
        v = m.violations[0]
        assert set(v.nodes) == {3, 0} and v.observed == pytest.approx(g + 1.0)

    def test_violation_record_shape(self):
        v = Violation("global_skew", 3.0, (1, 2), 5.0, 7.5, -2.5, detail="x")
        assert v.margin == pytest.approx(-2.5)
        text = v.describe()
        assert "global_skew" in text and "7.5" in text and "5" in text

    def test_all_recorded_violations_have_negative_margin(self):
        # Break both a ceiling (global skew) and, via an impossible floor
        # configuration, exercise the margin contract end to end.
        cfg = configs.static_path(10, horizon=40.0, seed=21)
        cfg.oracle = OracleRef("standard", {"bound_scale": 0.02})
        rep = run_experiment(cfg).oracle_report
        assert rep.violation_count > 0
        assert all(v.margin < 0.0 for v in rep.violations)


class TestOracleConstruction:
    def test_unknown_monitor_rejected(self, params8):
        with pytest.raises(OracleError, match="unknown monitor"):
            StreamingOracle(params8, monitors=["nope"])

    def test_duplicate_monitor_rejected(self, params8):
        with pytest.raises(OracleError, match="duplicate"):
            StreamingOracle(params8, monitors=["progress", "progress"])

    def test_empty_monitor_set_rejected(self, params8):
        with pytest.raises(OracleError, match="at least one"):
            StreamingOracle(params8, monitors=[])

    def test_bad_bound_scale_rejected(self, params8):
        with pytest.raises(OracleError, match="bound_scale"):
            StreamingOracle(params8, bound_scale=0.0)

    def test_default_set_is_every_monitor(self, params8):
        oracle = StreamingOracle(params8)
        assert {m.name for m in oracle.monitors} == set(MONITOR_FACTORIES)

    def test_double_install_rejected(self, params8):
        cfg = configs.static_path(4, horizon=5.0)
        from repro.harness.runner import build_experiment

        exp = build_experiment(cfg)
        oracle = StreamingOracle(params8, interval=1.0)
        oracle.install(exp.sim, exp.graph, exp.nodes)
        with pytest.raises(OracleError, match="already installed"):
            oracle.install(exp.sim, exp.graph, exp.nodes)


class TestHarnessWiring:
    def test_oracle_report_attached_and_clean(self):
        cfg = configs.static_path(8, horizon=40.0, seed=3)
        cfg.oracle = OracleRef("standard", {})
        res = run_experiment(cfg)
        rep = res.oracle_report
        assert rep is not None and rep.ok
        assert rep.checks > 0 and rep.violation_count == 0
        assert set(rep.monitors) == set(MONITOR_FACTORIES)
        assert rep.to_metrics()["oracle_ok"] is True

    def test_no_oracle_means_no_report(self):
        res = run_experiment(configs.static_path(4, horizon=10.0))
        assert res.oracle_report is None

    def test_oracle_is_a_neutral_observer(self):
        """Attaching the oracle must not change the execution it observes.

        Regression: the oracle's rng used to come from the shared
        RngFactory, shifting every later (churn/adversary) stream.
        """
        plain = run_experiment(configs.backbone_churn(8, horizon=60.0, seed=5))
        cfg = configs.backbone_churn(8, horizon=60.0, seed=5)
        cfg.oracle = OracleRef("standard", {})
        monitored = run_experiment(cfg)
        # (events_dispatched differs by the oracle's own sampling
        # callbacks; the *model* trajectory must be bit-identical.)
        assert monitored.max_global_skew == plain.max_global_skew
        assert monitored.max_local_skew == plain.max_local_skew
        assert monitored.total_jumps() == plain.total_jumps()
        assert monitored.transport_stats == plain.transport_stats

    def test_oracle_interval_defaults_to_sample_interval(self):
        cfg = configs.static_path(4, horizon=10.0, seed=1)
        cfg.sample_interval = 2.0
        cfg.oracle = OracleRef("standard", {})
        res = run_experiment(cfg)
        # t = 0, 2, ..., 10 -> 6 samples feeding the global monitor.
        assert res.oracle_report.monitor("global_skew").checks == 6

    def test_explicit_zero_interval_rejected_not_defaulted(self):
        cfg = configs.static_path(4, horizon=10.0)
        cfg.oracle = OracleRef("standard", {"interval": 0})
        with pytest.raises(OracleError, match="interval must be positive"):
            run_experiment(cfg)

    def test_summary_reports_unrecorded_runs_and_oracle_verdict(self):
        res = run_experiment(configs.large_ring(8, horizon=30.0))
        text = res.summary()
        assert "not recorded" in text and "oracle: OK" in text
        assert "0.000" not in text.split("\n")[1]  # no fake zero skew line

    def test_monitor_subset_via_ref_kwargs(self):
        cfg = configs.static_path(4, horizon=10.0)
        cfg.oracle = OracleRef("standard", {"monitors": ["global_skew", "progress"]})
        res = run_experiment(cfg)
        assert set(res.oracle_report.monitors) == {"global_skew", "progress"}

    def test_record_disabled_yields_empty_record(self):
        cfg = configs.static_ring(6, horizon=20.0, seed=2)
        cfg.record = False
        res = run_experiment(cfg)
        assert res.record.samples == 0 and res.record.episodes == []
        assert res.max_global_skew == 0.0  # empty-record convention


class TestAcceptance:
    """The ISSUE's two acceptance scenarios."""

    BASE_HORIZON = 60.0

    def test_long_horizon_large_ring_bounded_memory_and_clean(self):
        # 10x the base horizon, recorder off, oracle on: the regime the
        # offline suite cannot reach.
        cfg = configs.large_ring(32, horizon=10 * self.BASE_HORIZON)
        assert cfg.record is False and cfg.oracle is not None
        res = run_experiment(cfg)
        rep = res.oracle_report
        assert rep.ok and rep.to_metrics()["oracle_ok"] is True
        # No recorded history: memory is the oracle's O(n) state only.
        assert res.record.samples == 0
        assert res.record.clocks.size == 0
        assert rep.checks > 10_000  # the run really was monitored throughout
        # Each monitor kept scalars, not series: no violation storage grew.
        assert rep.violations == ()

    def test_broken_bound_reports_structured_violations(self):
        cfg = configs.static_path(12, horizon=self.BASE_HORIZON, seed=21)
        cfg.oracle = OracleRef("standard", {"bound_scale": 0.05})
        res = run_experiment(cfg)
        rep = res.oracle_report
        assert not rep.ok
        assert rep.violation_count > 0
        assert rep.to_metrics()["oracle_ok"] is False
        assert rep.worst_margin < 0.0
        by_monitor = {v.monitor for v in rep.violations}
        assert "global_skew" in by_monitor
        for v in rep.violations:
            assert 0.0 <= v.time <= cfg.horizon
            assert v.nodes and all(0 <= n < 12 for n in v.nodes)
            assert v.observed > v.bound

    def test_violation_storage_is_capped(self):
        cfg = configs.static_path(12, horizon=self.BASE_HORIZON, seed=21)
        cfg.oracle = OracleRef("standard", {"bound_scale": 0.05, "max_recorded": 3})
        rep = run_experiment(cfg).oracle_report
        assert rep.violation_count > len(rep.violations)
        per_monitor: dict[str, int] = {}
        for v in rep.violations:
            per_monitor[v.monitor] = per_monitor.get(v.monitor, 0) + 1
        assert all(count <= 3 for count in per_monitor.values())

    def test_worst_margin_aggregates_only_bound_monitors(self):
        # The floor monitors sit at ~0 slack on every compliant run; the
        # headline margin must reflect distance to a *real* theorem bound.
        cfg = configs.static_path(8, horizon=40.0, seed=3)
        cfg.oracle = OracleRef("standard", {})
        rep = run_experiment(cfg).oracle_report
        bound_margins = [
            rep.monitor(name).worst_margin
            for name in ("global_skew", "estimate_lag", "envelope")
        ]
        assert rep.worst_margin == pytest.approx(min(bound_margins))
        assert rep.worst_margin > 1.0  # informative, not pinned to ~0
        assert rep.monitor("lmax_dominates").worst_margin == pytest.approx(0.0)

    def test_report_render_mentions_verdict(self):
        cfg = configs.static_path(6, horizon=20.0)
        cfg.oracle = OracleRef("standard", {})
        rep = run_experiment(cfg).oracle_report
        assert "oracle OK" in rep.render()


class TestOracleOnAdversaries:
    @pytest.mark.parametrize(
        "maker",
        [configs.adversarial_drift, configs.adversarial_delay,
         configs.greedy_topology, configs.combined_adversary],
        ids=lambda m: m.__name__,
    )
    def test_adversarial_workloads_stay_conformant(self, maker):
        cfg = maker(8, horizon=60.0, seed=11)
        cfg.oracle = OracleRef("standard", {})
        res = run_experiment(cfg)
        assert res.oracle_report.ok, res.oracle_report.render()
