"""Tests for the sim driver (lazy clocks, timers) and NeighborTable."""

from __future__ import annotations

import pytest

from repro import SystemParams
from repro.core.estimates import NeighborTable
from repro.core.node import ClockSyncNode
from repro.core.protocol import MessageReceived, ProtocolCore, TimerFired
from repro.sim.clocks import ConstantRateClock, PiecewiseRateClock
from repro.sim.simulator import Simulator


class ProbeCore(ProtocolCore):
    """A do-nothing core; the driver mechanics are what these tests probe."""

    def _handle_start(self):
        pass

    def _handle_message(self, sender, payload):
        pass

    def _handle_discover_add(self, other):
        pass

    def _handle_discover_remove(self, other):
        pass

    def _on_timer(self, key):
        pass


class ProbeNode(ClockSyncNode):
    """Driver shell recording every dispatched event with its real time."""

    core_class = ProbeCore

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.timer_fires = []
        self.msgs = []

    def _dispatch(self, event):
        super()._dispatch(event)
        if isinstance(event, TimerFired):
            self.timer_fires.append((self.sim.now, event.key))
        elif isinstance(event, MessageReceived):
            self.msgs.append((self.sim.now, event.sender, event.payload))


class FakeTransport:
    def __init__(self):
        self.sent = []

    def send(self, u, v, payload):
        self.sent.append((u, v, payload))


def make_node(rate=1.0, params=None):
    sim = Simulator()
    params = params or SystemParams.for_network(4)
    node = ProbeNode(0, sim, ConstantRateClock(rate), FakeTransport(), params)
    return sim, node


class TestLazyClocks:
    def test_logical_clock_tracks_hardware(self):
        sim, node = make_node(rate=1.05)
        sim.run_until(10.0)
        assert node.logical_clock() == pytest.approx(10.5)
        assert node.max_estimate() == pytest.approx(10.5)

    def test_jump_then_drift(self):
        sim, node = make_node(rate=1.0)
        sim.schedule_at(5.0, lambda: (node._sync(), node._raise_max(100.0),
                                      node._jump_logical(20.0)))
        sim.run_until(8.0)
        assert node.logical_clock() == pytest.approx(23.0)

    def test_jump_never_lowers(self):
        sim, node = make_node()
        sim.schedule_at(5.0, lambda: (node._sync(), node._jump_logical(1.0)))
        sim.run_until(6.0)
        assert node.logical_clock() == pytest.approx(6.0)
        assert node.jumps == 0

    def test_read_in_past_rejected(self):
        sim, node = make_node()
        sim.schedule_at(5.0, lambda: node._sync())
        sim.run_until(6.0)
        with pytest.raises(ValueError):
            node.logical_clock(4.0)

    def test_jump_stats(self):
        sim, node = make_node()
        def act():
            node._sync()
            node._raise_max(50.0)
            node._jump_logical(10.0)
        sim.schedule_at(2.0, act)
        sim.run_until(3.0)
        assert node.jumps == 1
        assert node.total_jump == pytest.approx(8.0)


class TestSubjectiveTimers:
    def test_timer_converts_subjective_to_real(self):
        # A clock at rate 2 reaches +4 subjective units after 2 real units.
        sim, node = make_node(rate=2.0)
        node.set_subjective_timer("t", 4.0)
        sim.run_until(10.0)
        assert node.timer_fires == [(2.0, "t")]

    def test_timer_with_slow_clock(self):
        sim, node = make_node(rate=0.5)
        node.set_subjective_timer("t", 1.0)
        sim.run_until(10.0)
        assert node.timer_fires == [(2.0, "t")]

    def test_rearm_cancels_previous(self):
        sim, node = make_node()
        node.set_subjective_timer("t", 5.0)
        node.set_subjective_timer("t", 1.0)
        sim.run_until(10.0)
        assert node.timer_fires == [(1.0, "t")]

    def test_cancel(self):
        sim, node = make_node()
        node.set_subjective_timer("t", 1.0)
        assert node.cancel_timer("t") is True
        assert node.cancel_timer("t") is False
        sim.run_until(2.0)
        assert node.timer_fires == []

    def test_negative_delay_rejected(self):
        _sim, node = make_node()
        with pytest.raises(ValueError):
            node.set_subjective_timer("t", -0.5)

    def test_timer_across_rate_change(self):
        # Rate 1 for 10 units, then rate 0.5: a +12 subjective timer armed
        # at t=0 fires at real time 10 + 2/0.5 = 14.
        sim = Simulator()
        params = SystemParams.for_network(4)
        clock = PiecewiseRateClock([0.0, 10.0], [1.0, 0.5])
        node = ProbeNode(0, sim, clock, FakeTransport(), params)
        node.set_subjective_timer("t", 12.0)
        sim.run_until(20.0)
        assert node.timer_fires == [(14.0, "t")]


class TestNeighborTable:
    def test_add_and_get(self):
        t = NeighborTable()
        t.add(3, added_h=1.0, l_est=5.0)
        assert 3 in t and len(t) == 1
        row = t.get(3)
        assert row.added_h == 1.0 and row.l_est == 5.0

    def test_double_add_rejected(self):
        t = NeighborTable()
        t.add(3, 1.0, 5.0)
        with pytest.raises(ValueError):
            t.add(3, 2.0, 6.0)

    def test_refresh_is_monotone(self):
        t = NeighborTable()
        t.add(3, 1.0, 5.0)
        t.refresh(3, 7.0)
        assert t.get(3).l_est == 7.0
        t.refresh(3, 6.0)  # stale/lower report does not lower the estimate
        assert t.get(3).l_est == 7.0

    def test_refresh_unknown_rejected(self):
        with pytest.raises(KeyError):
            NeighborTable().refresh(1, 1.0)

    def test_remove(self):
        t = NeighborTable()
        t.add(3, 1.0, 5.0)
        assert t.remove(3) is True
        assert t.remove(3) is False
        assert 3 not in t

    def test_advance(self):
        t = NeighborTable()
        t.add(1, 0.0, 5.0)
        t.add(2, 0.0, 8.0)
        t.advance(1.5)
        assert t.get(1).l_est == 6.5
        assert t.get(2).l_est == 9.5

    def test_items_and_clear(self):
        t = NeighborTable()
        t.add(1, 0.0, 5.0)
        assert [v for v, _ in t.items()] == [1]
        t.clear()
        assert len(t) == 0
