"""The paper's theorems as executable invariants.

Every test here runs full executions (static or dynamic, randomized or
adversarial) and asserts the guarantees of Sections 3 and 6:

* logical clocks are strictly increasing with rate >= 1/2 (Section 3.3);
* ``Lmax_u >= L_u`` (Property 6.3);
* global skew <= G(n) (Theorem 6.9) under (T+D)-interval connectivity;
* max-estimate lag <= Lemma 6.8's bound;
* every edge sample respects the dynamic local skew envelope of
  Corollary 6.13 -- including brand-new edges;
* established edges respect the stable bound (Theorem 6.12 limit).

The hypothesis test at the bottom samples random workloads (topology,
churn, clocks, seeds) and checks the whole bundle on each.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro import SystemParams
from repro.analysis import envelope_violations, max_estimate_lag, max_global_skew
from repro.core import skew_bounds as sb
from repro.harness import OracleRef, configs, run_experiment
from repro.network.topology import path_edges
from repro.testing.strategies import experiment_configs


def check_rate_floor(record, *, floor=0.5, tol=1e-9):
    """Every logical clock advances at >= `floor` per unit real time."""
    dt = np.diff(record.times)
    dl = np.diff(record.clocks, axis=0)
    assert np.all(dl >= floor * dt[:, None] - tol), "rate floor violated"


def check_monotone(record, tol=1e-9):
    assert np.all(np.diff(record.clocks, axis=0) >= -tol), "clock decreased"


class TestSection3Requirements:
    @pytest.mark.parametrize("algo", ["dcsa", "max", "static", "free"])
    def test_rate_floor_and_monotonicity(self, algo):
        cfg = configs.static_path(8, horizon=80.0, algorithm=algo,
                                  clock_spec="split", seed=5)
        res = run_experiment(cfg)
        check_monotone(res.record)
        check_rate_floor(res.record)

    def test_lmax_dominates_logical(self):
        """Property 6.3 on a churned run, sampled densely."""
        cfg = configs.backbone_churn(10, horizon=80.0, seed=7)
        cfg.track_max_estimates = True
        res = run_experiment(cfg)
        assert np.all(res.record.max_estimates >= res.record.clocks - 1e-9)


class TestTheorem69GlobalSkew:
    @pytest.mark.parametrize("n", [4, 8, 16, 32])
    def test_static_path_worst_clocks(self, n):
        cfg = configs.static_path(n, horizon=150.0, clock_spec="split",
                                  seed=n)
        cfg.delay_spec = "max"
        res = run_experiment(cfg)
        assert res.max_global_skew <= sb.global_skew_bound(res.params) + 1e-9

    def test_rotating_backbone_no_stable_edge(self):
        """The theorem's own regime: interval-connected, nothing stable."""
        cfg = configs.rotating_backbone(10, horizon=200.0, window=25.0, seed=3)
        res = run_experiment(cfg)
        interval = res.params.max_delay + res.params.discovery_bound
        assert res.graph.check_interval_connectivity(interval, t_end=180.0)
        assert res.max_global_skew <= sb.global_skew_bound(res.params) + 1e-9

    def test_heavy_churn(self):
        cfg = configs.backbone_churn(12, k_extra=6, rewire_interval=2.0,
                                     horizon=150.0, seed=9)
        res = run_experiment(cfg)
        assert res.max_global_skew <= sb.global_skew_bound(res.params) + 1e-9

    def test_max_estimate_lag_lemma_6_8(self):
        cfg = configs.static_path(12, horizon=120.0, clock_spec="split", seed=1)
        cfg.track_max_estimates = True
        cfg.delay_spec = "max"
        res = run_experiment(cfg)
        lag = max_estimate_lag(res.record).max()
        assert lag <= sb.max_propagation_bound(res.params) + 1e-9


class TestCorollary613LocalSkew:
    @pytest.mark.parametrize(
        "maker, kwargs",
        [
            (configs.static_path, {"clock_spec": "split"}),
            (configs.static_ring, {}),
            (configs.backbone_churn, {}),
            (configs.flapping_edges, {}),
            (configs.edge_insertion, {"t_insert": 40.0, "horizon": 120.0}),
            (configs.two_chain_insertion, {"t_insert": 40.0, "horizon": 120.0}),
        ],
    )
    def test_envelope_never_violated(self, maker, kwargs):
        cfg = maker(12, seed=21, **({"horizon": 120.0} | kwargs))
        res = run_experiment(cfg)
        chk = envelope_violations(res.record, res.params)
        assert chk.compliant, (
            f"{cfg.name}: {chk.violations} violations, worst ratio "
            f"{chk.worst_ratio:.3f} on {chk.worst_edge} at age {chk.worst_age:.1f}"
        )

    def test_stable_edges_meet_stable_bound(self):
        """Edges older than the stabilization time obey B0 + 2 rho W."""
        cfg = configs.static_path(10, horizon=300.0, clock_spec="split", seed=2)
        res = run_experiment(cfg)
        stable = sb.stable_local_skew(res.params)
        t_stab = sb.stabilization_time(res.params)
        for ep in res.record.episodes:
            mask = ep.ages >= t_stab
            if mask.any():
                assert float(ep.skews[mask].max()) <= stable + 1e-9

    def test_adversarial_masked_execution_still_compliant(self):
        """Even under the Lemma 4.2 adversary (where skew is maximal), the
        DCSA never violates its own envelope: the hidden skew lives across
        *distant* pairs, not tracked edges."""
        from repro.lowerbound.executions import build_execution_pair
        from repro.lowerbound.mask import DelayMask
        from repro.lowerbound.scenario import _MaskedRun
        from repro.sim.events import PRIORITY_SAMPLE

        n = 12
        params = SystemParams.for_network(n, rho=0.05)
        edges = path_edges(n)
        pair = build_execution_pair(
            list(range(n)), edges, DelayMask({}, params.max_delay), 0, params
        )
        run = _MaskedRun(list(range(n)), edges, pair.beta_clocks,
                         pair.beta_policy, params, "dcsa")
        horizon = 1.05 * pair.full_skew_time(n - 1, params.rho)
        worst = {"skew": 0.0}

        def sample():
            for u, v in edges:
                s = abs(run.logical(u, run.sim.now) - run.logical(v, run.sim.now))
                worst["skew"] = max(worst["skew"], s)
            if run.sim.now + 5.0 <= horizon:
                run.sim.schedule_at(run.sim.now + 5.0, sample,
                                    priority=PRIORITY_SAMPLE)

        run.sim.schedule_at(5.0, sample, priority=PRIORITY_SAMPLE)
        run.run_until(horizon)
        # Adjacent-edge skew stays near T (the beta per-hop offset), far
        # below the stable bound.
        assert worst["skew"] <= sb.stable_local_skew(params) + 1e-9


class TestGradientProperty:
    def test_dcsa_local_skew_beats_max_sync_under_adversary(self):
        """The headline comparison: on the adversarial beta execution with a
        revealing shortcut, max-sync creates a huge adjacent-edge skew jump
        while the DCSA phases the constraint in."""
        from repro.lowerbound.executions import build_execution_pair
        from repro.lowerbound.mask import DelayMask
        from repro.lowerbound.scenario import _MaskedRun
        from repro.sim.events import PRIORITY_SAMPLE, PRIORITY_TOPOLOGY

        # Separation grows with n: max-sync's peak tracks T*(n-1) while the
        # DCSA's stays near B0 (which is n-independent at this scale).
        n = 24
        params = SystemParams.for_network(n, rho=0.05)
        edges = path_edges(n)
        pair = build_execution_pair(
            list(range(n)), edges, DelayMask({}, params.max_delay), 0, params
        )
        t_insert = 1.05 * pair.full_skew_time(n - 1, params.rho)
        peaks = {}
        for algo in ("dcsa", "max"):
            run = _MaskedRun(list(range(n)), edges, pair.beta_clocks,
                             pair.beta_policy, params, algo)
            run.sim.schedule_at(
                t_insert,
                lambda run=run: run.graph.add_edge(0, n - 1, run.sim.now),
                priority=PRIORITY_TOPOLOGY,
            )
            peak = {"v": 0.0}

            def sample(run=run, peak=peak):
                # Max skew across *old path* edges after the revelation.
                for u, v in edges:
                    s = abs(run.logical(u, run.sim.now) - run.logical(v, run.sim.now))
                    peak["v"] = max(peak["v"], s)
                if run.sim.now + 0.5 <= t_insert + 30.0:
                    run.sim.schedule_at(run.sim.now + 0.5, sample,
                                        priority=PRIORITY_SAMPLE)

            run.sim.schedule_at(t_insert + 0.5, sample, priority=PRIORITY_SAMPLE)
            run.run_until(t_insert + 30.0)
            peaks[algo] = peak["v"]
        # Max-sync: the revealed Lmax yanks node 15's neighbours upward one
        # message-hop at a time -> adjacent skew ~ Theta(n T). DCSA: jumps
        # capped at B0 per old edge.
        assert peaks["max"] > 2.0 * peaks["dcsa"]
        assert peaks["dcsa"] <= sb.stable_local_skew(params) + 1e-9


@settings(max_examples=12, deadline=None)
@given(cfg=experiment_configs(4, 14, horizon=60.0, adversarial=True))
def test_property_full_bundle_random_workloads(cfg):
    """Random workload sweep: every invariant holds on every execution.

    Workloads come from the shared strategy library
    (:mod:`repro.testing.strategies`), which spans more topologies, clock
    specs and adversaries than the old inline generator -- and the
    streaming oracle rides along as a second, online checker whose verdict
    must agree with the offline assertions below.
    """
    cfg.oracle = OracleRef("standard", {})
    res = run_experiment(cfg)
    params = cfg.params
    check_monotone(res.record)
    check_rate_floor(res.record)
    assert max_global_skew(res.record) <= sb.global_skew_bound(params) + 1e-9
    assert envelope_violations(res.record, params).compliant
    assert res.oracle_report.ok, res.oracle_report.render()
