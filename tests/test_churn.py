"""Tests for churn processes, including interval-connectivity guarantees."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.churn import (
    EdgeFlapper,
    MobileGeometricChurn,
    RandomRewirer,
    RotatingBackboneChurn,
    ScriptedChurn,
)
from repro.network.eventlog import GraphEventLog
from repro.network.graph import DynamicGraph
from repro.network.topology import path_edges
from repro.sim.simulator import Simulator


class TestScriptedChurn:
    def test_replays_events_in_order(self):
        sim = Simulator()
        g = DynamicGraph(range(4), [(0, 1)])
        churn = ScriptedChurn(
            [(2.0, "add", 1, 2), (4.0, "remove", 0, 1), (5.0, "add", 0, 3)]
        )
        churn.install(sim, g)
        sim.run_until(10.0)
        assert g.has_edge(1, 2) and g.has_edge(0, 3)
        assert not g.has_edge(0, 1)

    def test_bad_op_rejected(self):
        with pytest.raises(ValueError):
            ScriptedChurn([(1.0, "toggle", 0, 1)])

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            ScriptedChurn([(-1.0, "add", 0, 1)])


class TestEdgeFlapper:
    def test_edge_toggles(self, rng):
        sim = Simulator()
        g = DynamicGraph(range(3), [])
        flapper = EdgeFlapper([(0, 2)], up=2.0, down=3.0, rng=rng, horizon=40.0)
        flapper.install(sim, g)
        sim.run_until(50.0)
        hist = g.history(0, 2)
        assert len(hist) >= 4
        # Alternating add/remove.
        for (t1, a1), (t2, a2) in zip(hist, hist[1:]):
            assert a1 != a2
            assert t2 > t1

    def test_up_down_durations(self, rng):
        sim = Simulator()
        g = DynamicGraph(range(2), [])
        flapper = EdgeFlapper([(0, 1)], up=2.0, down=3.0, rng=rng, horizon=30.0)
        flapper.install(sim, g)
        sim.run_until(40.0)
        hist = g.history(0, 1)
        ups = [t2 - t1 for (t1, a1), (t2, _a2) in zip(hist, hist[1:]) if a1]
        assert all(abs(u - 2.0) < 1e-9 for u in ups)

    def test_bad_durations(self, rng):
        with pytest.raises(ValueError):
            EdgeFlapper([(0, 1)], up=0.0, down=1.0, rng=rng)


class TestRandomRewirer:
    def test_backbone_never_touched(self, rng):
        sim = Simulator()
        backbone = path_edges(8)
        g = DynamicGraph(range(8), backbone)
        rewirer = RandomRewirer(8, 3, 1.0, rng, protected=backbone, horizon=50.0)
        rewirer.install(sim, g)
        sim.run_until(60.0)
        for u, v in backbone:
            assert g.has_edge(u, v), "backbone edge was removed"
        # The graph stays connected throughout (backbone is static).
        assert g.check_interval_connectivity(5.0, t_end=60.0)

    def test_extra_edge_count_bounded(self, rng):
        sim = Simulator()
        backbone = path_edges(6)
        g = DynamicGraph(range(6), backbone)
        RandomRewirer(6, 2, 0.5, rng, protected=backbone, horizon=20.0).install(sim, g)
        sim.run_until(25.0)
        assert g.edge_count() <= len(backbone) + 2

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            RandomRewirer(4, 0, 1.0, rng)
        with pytest.raises(ValueError):
            RandomRewirer(4, 1, 0.0, rng)


class TestMobileGeometric:
    def test_positions_stay_in_unit_square(self, rng):
        sim = Simulator()
        pos = rng.random((10, 2))
        g = DynamicGraph(range(10), [])
        churn = MobileGeometricChurn(pos, 0.4, 0.05, 1.0, rng, horizon=30.0)
        churn.install(sim, g)
        sim.run_until(40.0)
        assert np.all(churn.pos >= -1e-9) and np.all(churn.pos <= 1 + 1e-9)

    def test_edges_match_radius_after_updates(self, rng):
        sim = Simulator()
        pos = rng.random((8, 2))
        g = DynamicGraph(range(8), [])
        churn = MobileGeometricChurn(pos, 0.5, 0.02, 2.0, rng, horizon=20.0)
        churn.install(sim, g)
        sim.run_until(20.5)
        desired = churn._desired_edges()
        assert set(g.edges()) == desired

    def test_backbone_protected(self, rng):
        sim = Simulator()
        pos = rng.random((6, 2))
        backbone = path_edges(6)
        g = DynamicGraph(range(6), backbone)
        churn = MobileGeometricChurn(
            pos, 0.2, 0.1, 1.0, rng, protected=backbone, horizon=20.0
        )
        churn.install(sim, g)
        sim.run_until(25.0)
        for u, v in backbone:
            assert g.has_edge(u, v)

    def test_bad_positions_rejected(self, rng):
        with pytest.raises(ValueError):
            MobileGeometricChurn(np.zeros((4, 3)), 0.3, 0.1, 1.0, rng)


class TestRotatingBackbone:
    def test_interval_connectivity_guarantee(self, rng):
        """No edge is permanent, yet overlap-interval connectivity holds."""
        sim = Simulator()
        g = DynamicGraph(range(8), [])
        churn = RotatingBackboneChurn(8, window=20.0, overlap=5.0, rng=rng, horizon=100.0)
        churn.install(sim, g)
        sim.run_until(110.0)
        assert g.check_interval_connectivity(5.0, t_end=95.0)

    def test_edges_are_transient(self, rng):
        sim = Simulator()
        g = DynamicGraph(range(6), [])
        churn = RotatingBackboneChurn(6, window=10.0, overlap=3.0, rng=rng, horizon=80.0)
        churn.install(sim, g)
        sim.run_until(100.0)
        # With random paths per window, at least one edge present early
        # must eventually be removed.
        removed_any = any(
            any(not added for _t, added in g.history(u, v))
            for u in range(6)
            for v in range(u + 1, 6)
        )
        assert removed_any

    def test_overlap_validation(self, rng):
        with pytest.raises(ValueError):
            RotatingBackboneChurn(4, window=5.0, overlap=5.0, rng=rng, horizon=10.0)


class TestEventLog:
    def test_capture_and_replay(self, rng):
        sim = Simulator()
        g = DynamicGraph(range(5), [(0, 1)])
        log = GraphEventLog()
        log.attach(g)
        ScriptedChurn([(1.0, "add", 1, 2), (2.0, "remove", 0, 1)]).install(sim, g)
        sim.run_until(5.0)
        assert log.events == [(1.0, "add", 1, 2), (2.0, "remove", 0, 1)]
        # Replay onto a fresh graph.
        sim2 = Simulator()
        g2 = DynamicGraph(range(5), [(0, 1)])
        log.as_churn().install(sim2, g2)
        sim2.run_until(5.0)
        assert set(g2.edges()) == set(g.edges())

    def test_csv_round_trip(self):
        log = GraphEventLog.from_events([(1.5, "add", 0, 3), (2.0, "remove", 0, 3)])
        text = log.to_csv()
        back = GraphEventLog.from_csv(text)
        assert back.events == log.events

    def test_initial_edges_extraction(self):
        log = GraphEventLog.from_events(
            [(0.0, "add", 0, 1), (1.0, "add", 1, 2)]
        )
        assert log.initial_edges() == [(0, 1)]
        assert log.as_churn().events == [(1.0, "add", 1, 2)]

    def test_bad_op_rejected(self):
        with pytest.raises(ValueError):
            GraphEventLog().record(1.0, "flip", 0, 1)


@settings(max_examples=20)
@given(
    n=st.integers(min_value=3, max_value=8),
    window=st.floats(min_value=8.0, max_value=25.0),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_rotating_backbone_interval_connected(n, window, seed):
    """For any size/window/seed, overlap-interval connectivity holds."""
    overlap = window / 4.0
    sim = Simulator()
    g = DynamicGraph(range(n), [])
    rng = np.random.default_rng(seed)
    RotatingBackboneChurn(n, window=window, overlap=overlap, rng=rng, horizon=6 * window).install(
        sim, g
    )
    sim.run_until(6 * window + 1.0)
    assert g.check_interval_connectivity(overlap, t_end=5 * window)
