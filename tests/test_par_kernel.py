"""Tests for the space-partitioned parallel backend (repro.sim.par).

The load-bearing guarantee is the **parity contract**: a genuinely
sharded run is bit-identical to the serial backend on the same config --
per-node clocks and estimates, jump counts and float totals, message
counters, event tallies, oracle reports.  The tests here pin that
contract across shard counts on the flagship sync workload, under
scripted churn that flips cross-shard edges mid-window, under the
streaming oracle, and property-based over randomly generated topologies
and churn scripts.  The partitioner, the fallback gate and the per-shard
telemetry get unit coverage alongside.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.protocol import SystemParams
from repro.harness import configs
from repro.harness.registry import OracleRef, RuntimeRef
from repro.harness.runner import Experiment, ExperimentConfig, run_experiment
from repro.network.churn import ScriptedChurn
from repro.sim.par import genuine_shard_reason, run_par
from repro.sim.partition import crossing_counts, partition_ranges
from repro.telemetry.registry import get_registry


def _ring_cfg(n=48, **overrides):
    """A small two-rate-class sync ring that genuinely shards."""
    params = SystemParams(
        n=n, rho=1e-4, max_delay=1.0, tick_interval=0.25, b0=20.0
    )
    base = dict(
        params=params,
        initial_edges=[(i, (i + 1) % n) for i in range(n)],
        algorithm="dcsa",
        clock_spec="split",
        delay_spec="half",
        discovery_spec="max",
        horizon=40.0,
        sample_interval=5.0,
        seed=7,
        record=False,
        stagger_ticks=False,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def _fingerprint(cfg, res):
    """Every observable a shard-merge divergence could show up in.

    Floats are captured as ``repr`` so the comparison is bitwise, not
    tolerance-based.
    """
    n = cfg.params.n
    h = float(cfg.horizon)
    nodes = [res.nodes[i] for i in range(n)]
    return {
        "clock": [repr(nd.logical_clock(h)) for nd in nodes],
        "maxe": [repr(nd.max_estimate(h)) for nd in nodes],
        "jumps": [nd.jumps for nd in nodes],
        "total_jump": [repr(nd.total_jump) for nd in nodes],
        "messages_sent": [nd.messages_sent for nd in nodes],
        "transport": dict(res.transport_stats),
        "events": res.events_dispatched,
        "oracle": (
            None
            if res.oracle_report is None
            else (
                res.oracle_report.ok,
                res.oracle_report.checks,
                res.oracle_report.violation_count,
                repr(res.oracle_report.worst_margin),
            )
        ),
    }


def _assert_parity(cfg, shard_counts=(1, 2, 4)):
    serial = Experiment(cfg).run()
    expected = _fingerprint(cfg, serial)
    for k in shard_counts:
        res = run_par(cfg, k)
        assert res.par_fallback_reason is None, res.par_fallback_reason
        assert res.par_shards == min(k, cfg.params.n)
        assert _fingerprint(cfg, res) == expected, f"shards={k}"
    return serial


# --------------------------------------------------------------------- #
# Partitioner units
# --------------------------------------------------------------------- #


class TestPartitioner:
    def test_single_shard_is_whole_range(self):
        assert partition_ranges(10, 1, [(0, 9)]) == [(0, 10)]

    def test_ranges_are_contiguous_and_cover(self):
        edges = [(i, (i + 1) % 64) for i in range(64)]
        ranges = partition_ranges(64, 4, edges)
        assert ranges[0][0] == 0 and ranges[-1][1] == 64
        for (a, b), (c, d) in zip(ranges, ranges[1:]):
            assert b == c and a < b

    def test_cut_prefers_zero_crossing_boundary(self):
        # Two 8-node cliques joined nowhere: the only zero-crossing cut
        # near the middle is exactly at 8.
        edges = [(u, v) for u in range(8) for v in range(u + 1, 8)]
        edges += [(u, v) for u in range(8, 16) for v in range(u + 1, 16)]
        assert partition_ranges(16, 2, edges) == [(0, 8), (8, 16)]
        assert crossing_counts(16, edges)[8] == 0

    def test_shard_count_clamps_to_population(self):
        ranges = partition_ranges(3, 8, [])
        assert ranges[0][0] == 0 and ranges[-1][1] == 3
        assert len(ranges) == 3

    def test_invalid_arguments_raise(self):
        with pytest.raises(ValueError):
            partition_ranges(0, 2, [])
        with pytest.raises(ValueError):
            partition_ranges(8, 0, [])


# --------------------------------------------------------------------- #
# Fallback gate
# --------------------------------------------------------------------- #


class TestGenuineShardGate:
    def test_sync_ring_is_genuine(self):
        assert genuine_shard_reason(_ring_cfg()) is None

    @pytest.mark.parametrize(
        "overrides,needle",
        [
            (dict(stagger_ticks=True), "stagger"),
            (dict(record=True), "record"),
            (dict(trace=True), "tracing"),
            (dict(delay_spec="uniform"), "delay_spec"),
            (dict(discovery_spec="uniform"), "discovery_spec"),
            (dict(clock_spec="drifting"), "clock_spec"),
        ],
        ids=["stagger", "record", "trace", "delay", "discovery", "clock"],
    )
    def test_unsupported_configs_are_named(self, overrides, needle):
        reason = genuine_shard_reason(_ring_cfg(**overrides))
        assert reason is not None and needle in reason

    def test_fallback_still_runs_and_records_reason(self):
        cfg = _ring_cfg(stagger_ticks=True)
        serial = Experiment(cfg).run()
        res = run_par(cfg, 2)
        assert res.par_fallback_reason is not None
        assert res.par_shards is None
        assert res.config is cfg
        assert _fingerprint(cfg, res) == _fingerprint(cfg, serial)


# --------------------------------------------------------------------- #
# Parity: bit-identical to serial
# --------------------------------------------------------------------- #


class TestParity:
    def test_sync_ring_bitwise_across_shard_counts(self):
        _assert_parity(_ring_cfg())

    def test_churn_flipping_cross_shard_edges_mid_window(self):
        # Boundary edges for K=2 (23-24), K=4 (11-12) and the ring wrap
        # (0-47), each removed and re-added at non-barrier times.
        churn = ScriptedChurn(
            [
                (3.1, "remove", 23, 24),
                (7.7, "add", 23, 24),
                (11.3, "remove", 11, 12),
                (13.9, "add", 11, 12),
                (17.2, "remove", 0, 47),
                (22.6, "add", 0, 47),
            ]
        )
        serial = _assert_parity(_ring_cfg(churn=(churn,)))
        # The flips must actually have dropped something for this test to
        # exercise the cross-shard shadow path.
        assert serial.transport_stats["dropped_removed"] > 0

    def test_discovery_zero_bitwise(self):
        _assert_parity(_ring_cfg(discovery_spec="zero"))

    def test_oracle_report_bitwise(self):
        cfg = _ring_cfg(oracle=OracleRef("standard", {"bound_scale": 3.0}))
        serial = _assert_parity(cfg, shard_counts=(2,))
        assert serial.oracle_report is not None

    def test_zero_cross_edge_shard(self):
        # Two disjoint 24-node rings: the partitioner cuts between them,
        # so one shard exchanges zero envelopes -- the degenerate barrier
        # protocol (empty flushes both ways) must still agree.
        n = 48
        edges = [(i, (i + 1) % 24) for i in range(24)]
        edges += [(24 + i, 24 + (i + 1) % 24) for i in range(24)]
        _assert_parity(_ring_cfg(initial_edges=edges), shard_counts=(2,))

    def test_runtime_ref_and_workload_wiring(self):
        cfg = configs.huge_sync_ring_1m(n=96, shards=2, horizon=10.0)
        assert isinstance(cfg.runtime, RuntimeRef)
        res = run_experiment(cfg)
        assert res.par_shards == 2
        assert res.par_fallback_reason is None
        serial = run_experiment(replace(cfg, runtime="sim"))
        assert res.events_dispatched == serial.events_dispatched

    def test_repro_shards_env_reroutes_sim_runtime(self, monkeypatch):
        cfg = _ring_cfg(n=24, horizon=20.0)
        serial = run_experiment(cfg)
        monkeypatch.setenv("REPRO_SHARDS", "2")
        res = run_experiment(cfg)
        assert res.par_shards == 2
        assert _fingerprint(cfg, res) == _fingerprint(cfg, serial)


@settings(max_examples=8, deadline=None)
@given(data=st.data())
def test_random_partitions_replay_bitwise(data):
    """Property: random topology + churn, shard-merged == serial.

    Configs are drawn to stay inside the genuine-shard gate (the point is
    to exercise the merge, not the fallback), with enough structural
    freedom -- random extra chords, random cross-boundary churn -- that
    ordering bugs in the envelope merge or the provenance keys surface as
    fingerprint diffs.
    """
    n = data.draw(st.integers(min_value=8, max_value=40), label="n")
    edges = {(min(i, (i + 1) % n), max(i, (i + 1) % n)) for i in range(n)}
    extra = data.draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1)
            ).filter(lambda e: e[0] != e[1]),
            max_size=6,
        ),
        label="chords",
    )
    edges.update((min(u, v), max(u, v)) for u, v in extra)
    edge_list = sorted(edges)
    n_churn = data.draw(st.integers(0, 4), label="n_churn")
    events = []
    present = set(edge_list)
    t = 0.0
    for _ in range(n_churn):
        t += data.draw(
            st.floats(0.5, 8.0, allow_nan=False, allow_infinity=False)
        )
        u, v = data.draw(st.sampled_from(edge_list))
        # A flip is only legal relative to the edge's current state.
        if (u, v) in present:
            present.discard((u, v))
            events.append((t, "remove", u, v))
        else:
            present.add((u, v))
            events.append((t, "add", u, v))
    churn = (ScriptedChurn(events),) if events else ()
    cfg = _ring_cfg(
        n=n,
        initial_edges=edge_list,
        churn=churn,
        horizon=25.0,
        seed=data.draw(st.integers(0, 2**20), label="seed"),
    )
    assert genuine_shard_reason(cfg) is None
    serial = Experiment(cfg).run()
    res = run_par(cfg, 2)
    assert res.par_fallback_reason is None
    assert _fingerprint(cfg, res) == _fingerprint(cfg, serial)


# --------------------------------------------------------------------- #
# Golden workloads under REPRO_SHARDS
# --------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "make",
    [
        lambda: configs.static_path(8, horizon=60.0, seed=3),
        lambda: configs.backbone_churn(8, horizon=60.0, seed=5),
    ],
    ids=["static_path", "backbone_churn"],
)
def test_golden_workloads_bitwise_under_shards_env(make, monkeypatch):
    cfg = make()
    baseline = run_experiment(cfg)
    for k in ("1", "2", "4"):
        monkeypatch.setenv("REPRO_SHARDS", k)
        res = run_experiment(make())
        assert res.max_global_skew == baseline.max_global_skew
        assert res.max_local_skew == baseline.max_local_skew
        assert res.total_jumps() == baseline.total_jumps()
        assert res.events_dispatched == baseline.events_dispatched


# --------------------------------------------------------------------- #
# Batch-kernel gating diagnostics
# --------------------------------------------------------------------- #


class TestGateDiagnostics:
    def test_churn_records_scalar_path_reason(self):
        churn = ScriptedChurn([(3.0, "remove", 5, 6), (9.0, "add", 5, 6)])
        res = run_par(_ring_cfg(churn=(churn,)), 2)
        assert res.batch_gate_reason is not None
        assert "churn" in res.batch_gate_reason
        assert "batch kernel declined" in res.summary()

    def test_sync_workload_keeps_batch_kernel(self):
        res = run_par(_ring_cfg(), 2)
        assert res.batch_gate_reason is None
        assert "parallel backend: 2 shards" in res.summary()

    def test_fallback_reason_lands_in_summary(self):
        res = run_par(_ring_cfg(record=True), 2)
        assert res.par_fallback_reason is not None
        assert "parallel fallback" in res.summary()


# --------------------------------------------------------------------- #
# Per-shard telemetry
# --------------------------------------------------------------------- #


class TestTelemetry:
    def test_per_shard_metrics_surface(self):
        reg = get_registry()
        reg.reset()
        reg.enable()
        try:
            res = run_par(_ring_cfg(), 2)
            assert res.par_shards == 2
            snap = reg.snapshot()
        finally:
            reg.disable()
            reg.reset()
        counters = snap["counters"]
        gauges = snap["gauges"]
        assert gauges["par.shards"] == 2
        assert counters["par.shard0.events"] > 0
        assert counters["par.shard1.events"] > 0
        assert counters["par.shard0.envelopes_out"] > 0
        assert counters["par.shard1.envelopes_in"] > 0
        assert 0.0 < gauges["par.utilization"] <= 1.0
        assert gauges["par.shard0.busy_seconds"] > 0.0

    def test_no_metrics_without_registry(self):
        # Blank-beats-nonsense: with no ambient registry the run must not
        # create one as a side effect.
        reg = get_registry()
        reg.reset()
        run_par(_ring_cfg(n=24, horizon=20.0), 2)
        snap = reg.snapshot()
        assert not any(k.startswith("par.") for k in snap["counters"])
        assert not any(k.startswith("par.") for k in snap["gauges"])
