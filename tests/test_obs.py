"""Tests for the skew observatory (repro.obs): timeline, bundles, ledger.

The load-bearing guarantees:

* **Neutrality** -- activating timeline capture leaves every
  deterministic run metric bit-identical: the recorder is an ambient
  observer like the sampler and tracer, drawing no RNG and scheduling
  nothing.
* **Schema** -- every assembled bundle validates against the versioned
  bundle schema, and the JSON embedded in a rendered report round-trips
  through the same validator (the HTML page *is* the machine-readable
  artifact).
* **Ledger** -- records are content-addressed (bit-identical reruns
  dedupe), resolvable by abbreviated id, and diffed direction-aware.
"""

from __future__ import annotations

import json
import math
import re

import numpy as np
import pytest

from repro.cli import main
from repro.harness import OracleRef, configs, run_experiment
from repro.obs import (
    BundleError,
    LedgerError,
    TimelineRecorder,
    active_timeline,
    append_record,
    assemble_bundle,
    deactivate_timeline,
    diff_records,
    find_record,
    ledger_record,
    load_bundle,
    read_ledger,
    render_report,
    timeline_session,
    validate_bundle,
    write_bundle,
)
from repro.obs.ledger import record_id


def run_cli(capsys, *argv: str) -> tuple[int, str, str]:
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def _armed_config():
    cfg = configs.backbone_churn(8, horizon=40.0, seed=5)
    cfg.oracle = OracleRef("standard", {})
    return cfg


@pytest.fixture(scope="module")
def armed_run():
    """One oracle-armed run captured under an ambient timeline."""
    cfg = _armed_config()
    with timeline_session() as tl:
        result = run_experiment(cfg)
    return result, tl


@pytest.fixture(scope="module")
def bundle_doc(armed_run):
    result, tl = armed_run
    return assemble_bundle(
        result,
        kind="run",
        workload="backbone_churn",
        elapsed_seconds=0.25,
        timeline=tl,
        frames=None,
    )


# --------------------------------------------------------------------- #
# Timeline capture
# --------------------------------------------------------------------- #


class TestTimeline:
    def test_capture_follows_oracle_cadence(self, armed_run):
        result, tl = armed_run
        assert tl.bound
        assert tl.rows > 0
        doc = tl.to_dict()
        assert doc["v"] == 1
        assert doc["rows"] == tl.rows
        assert len(doc["columns"]["t"]) == doc["rows"]
        # Churn workload: topology events were mirrored.
        assert doc["events"]
        assert doc["events_dropped"] == 0
        # The envelope columns are populated while edges are live.
        margins = [m for m in doc["columns"]["envelope_margin"] if m is not None]
        assert margins
        # No violations in the unscaled run: every margin is nonnegative.
        assert min(margins) >= 0.0
        assert all(v == 0 for v in doc["columns"]["violations"])

    def test_field_rows_are_skew_vs_min(self, armed_run):
        _result, tl = armed_run
        doc = tl.to_dict()
        assert doc["field_nodes"] == sorted(doc["field_nodes"])
        for row in doc["field"]:
            assert len(row) == len(doc["field_nodes"])
            assert min(row) == 0.0  # skew relative to the min clock

    def test_stride_doubles_at_row_budget(self):
        tl = TimelineRecorder(row_budget=4)
        params = configs.static_path(4, horizon=10.0).params
        tl.bind(params, [0, 1, 2, 3])
        clocks = np.zeros(4)
        for tick in range(32):
            tl.record(float(tick), clocks, None)
        assert tl.rows <= 4
        assert tl.stride > 1
        doc = tl.to_dict()
        ts = doc["columns"]["t"]
        # Decimation keeps an evenly-strided prefix of the samples.
        assert ts == sorted(ts)
        deltas = {ts[i + 1] - ts[i] for i in range(len(ts) - 1)}
        assert len(deltas) == 1
        # lmax_spread had no estimates: NaN sanitized to None, not NaN.
        assert all(v is None for v in doc["columns"]["lmax_spread"])
        assert not any(
            isinstance(v, float) and math.isnan(v)
            for v in doc["columns"]["lmax_spread"]
        )

    def test_field_budget_decimates_wide_networks(self):
        tl = TimelineRecorder(field_budget=8)
        params = configs.static_path(4, horizon=10.0).params
        tl.bind(params, list(range(100)))
        tl.record(0.0, np.arange(100, dtype=float), None)
        doc = tl.to_dict()
        assert len(doc["field_nodes"]) == 8
        assert doc["field_nodes"][0] == 0
        assert doc["field_nodes"][-1] == 99

    def test_event_budget_counts_overflow(self):
        tl = TimelineRecorder(event_budget=2)
        params = configs.static_path(4, horizon=10.0).params
        tl.bind(params, [0, 1, 2, 3])
        for k in range(5):
            tl.edge_event(float(k), 0, 1 + (k % 3), True)
        assert len(tl.events) == 2
        assert tl.events_dropped == 3

    def test_bad_budgets_rejected(self):
        with pytest.raises(ValueError):
            TimelineRecorder(row_budget=2)
        with pytest.raises(ValueError):
            TimelineRecorder(row_budget=7)
        with pytest.raises(ValueError):
            TimelineRecorder(field_budget=0)

    def test_session_scopes_the_ambient_recorder(self):
        assert active_timeline() is None
        with timeline_session() as tl:
            assert active_timeline() is tl
        assert active_timeline() is None
        deactivate_timeline()  # idempotent


# --------------------------------------------------------------------- #
# Neutrality: capture must not perturb the physics
# --------------------------------------------------------------------- #

#: The golden workloads (mirrors tests/test_golden_values.py).
WORKLOADS = [
    ("static_path", lambda: configs.static_path(8, horizon=60.0, seed=3)),
    ("backbone_churn", lambda: configs.backbone_churn(8, horizon=60.0, seed=5)),
    ("adversarial_drift", lambda: configs.adversarial_drift(8, horizon=60.0, seed=7)),
]


class TestNeutrality:
    @pytest.mark.parametrize("name,make", WORKLOADS, ids=[w[0] for w in WORKLOADS])
    def test_metrics_identical_with_capture_on(self, name, make):
        baseline = run_experiment(make())
        with timeline_session():
            observed = run_experiment(make())
        # Bit-identical, not approx: the recorder is a pure observer.
        assert observed.max_global_skew == baseline.max_global_skew
        assert observed.max_local_skew == baseline.max_local_skew
        assert observed.total_jumps() == baseline.total_jumps()
        assert observed.events_dispatched == baseline.events_dispatched

    def test_armed_run_identical_with_capture_on(self):
        baseline = run_experiment(_armed_config())
        with timeline_session() as tl:
            observed = run_experiment(_armed_config())
        assert tl.rows > 0  # capture really was live this time
        assert observed.max_global_skew == baseline.max_global_skew
        assert observed.total_jumps() == baseline.total_jumps()
        assert observed.events_dispatched == baseline.events_dispatched
        base_report = baseline.oracle_report
        obs_report = observed.oracle_report
        assert base_report is not None and obs_report is not None
        assert obs_report.checks == base_report.checks
        assert obs_report.worst_margin == base_report.worst_margin


# --------------------------------------------------------------------- #
# Bundles
# --------------------------------------------------------------------- #


class TestBundle:
    def test_assemble_validates(self, bundle_doc):
        validate_bundle(bundle_doc)  # assembly already validated; re-check
        run = bundle_doc["run"]
        assert run["workload"] == "backbone_churn"
        assert run["runtime"] == "sim"
        assert run["events_per_sec"] > 0
        assert bundle_doc["timeline"]["rows"] > 0
        assert bundle_doc["oracle"]["ok"] is True

    def test_write_load_roundtrip(self, bundle_doc, tmp_path):
        path = write_bundle(bundle_doc, str(tmp_path / "b"))
        assert path.endswith("bundle.json")
        # Both the directory and the file itself are accepted addresses.
        assert load_bundle(str(tmp_path / "b")) == bundle_doc
        assert load_bundle(path) == bundle_doc

    @pytest.mark.parametrize(
        "mutate,message",
        [
            (lambda d: d.pop("kind"), "kind"),
            (lambda d: d["run"].pop("config_hash"), "config_hash"),
            (lambda d: d["run"].update(n="eight"), "run.n"),
            (lambda d: d["oracle"].update(ok="yes"), "oracle.ok"),
            (lambda d: d["timeline"]["columns"]["t"].pop(), "timeline"),
            (lambda d: d.update(kind="demo"), "kind"),
        ],
    )
    def test_validator_rejects_malformed_documents(
        self, bundle_doc, mutate, message
    ):
        doc = json.loads(json.dumps(bundle_doc))
        mutate(doc)
        with pytest.raises(BundleError, match=message):
            validate_bundle(doc)

    def test_run_without_timeline_bundles_null_timeline(self):
        cfg = _armed_config()
        result = run_experiment(cfg)  # no ambient recorder active
        doc = assemble_bundle(result, workload="backbone_churn")
        assert doc["timeline"] is None
        assert doc["telemetry"] is None
        validate_bundle(doc)


# --------------------------------------------------------------------- #
# HTML observatory
# --------------------------------------------------------------------- #

_EMBED_RE = re.compile(
    r'<script type="application/json" id="bundle-data">(.*?)</script>', re.S
)

_SECTIONS = ("overview", "heatmap", "envelope", "telemetry", "violations")


def _extract_embedded(html: str) -> dict:
    match = _EMBED_RE.search(html)
    assert match, "no embedded bundle JSON"
    return json.loads(match.group(1))


class TestReport:
    def test_report_is_selfcontained_and_roundtrips(self, bundle_doc):
        html = render_report(bundle_doc)
        # Single file: no external scripts, stylesheets or images.
        assert "src=" not in html.replace("srcdoc", "")
        assert '<link rel="stylesheet"' not in html
        for section in _SECTIONS:
            assert f'id="{section}"' in html
        embedded = _extract_embedded(html)
        validate_bundle(embedded)
        assert embedded == bundle_doc

    def test_cli_clean_run_report(self, capsys, tmp_path):
        bundle = str(tmp_path / "bundle")
        code, _out, _err = run_cli(
            capsys,
            "run", "static_path", "--set", "n=8", "horizon=40",
            "--bundle", bundle, "--ledger", str(tmp_path / "ledger"),
        )
        assert code == 0
        out_html = str(tmp_path / "report.html")
        code, out, _err = run_cli(capsys, "report", bundle, "-o", out_html)
        assert code == 0
        assert "wrote" in out
        html = open(out_html, encoding="utf-8").read()
        embedded = _extract_embedded(html)
        validate_bundle(embedded)
        assert embedded == load_bundle(bundle)
        assert embedded["oracle"] is None  # plain run: no oracle attached
        for section in _SECTIONS:
            assert f'id="{section}"' in html

    def test_cli_violating_run_report(self, capsys, tmp_path):
        bundle = str(tmp_path / "bundle")
        code, _out, _err = run_cli(
            capsys,
            "check", "adversarial_delay",
            "--set", "n=8", "horizon=120", "seed=1",
            "--bound-scale", "0.3",
            "--bundle", bundle, "--ledger", str(tmp_path / "ledger"),
        )
        assert code == 1  # seeded run violates the tightened bounds
        code, _out, _err = run_cli(capsys, "report", bundle)
        assert code == 0
        html = open(str(tmp_path / "bundle" / "report.html"), encoding="utf-8").read()
        embedded = _extract_embedded(html)
        validate_bundle(embedded)
        assert embedded["oracle"]["ok"] is False
        assert embedded["oracle"]["violations"]
        assert embedded["timeline"]["rows"] > 0
        # The inline JS builds the per-violation anchors the envelope
        # chart deep-links to (rendered client-side, so assert the code).
        assert "renderViolations" in html
        assert "'v-'" in html

    def test_cli_report_rejects_garbage(self, capsys, tmp_path):
        missing = str(tmp_path / "nope")
        code, _out, err = run_cli(capsys, "report", missing)
        assert code == 2
        assert "error" in err
        bad = tmp_path / "bad.json"
        bad.write_text('{"not": "a bundle"}\n', encoding="utf-8")
        code, _out, err = run_cli(capsys, "report", str(bad))
        assert code == 2
        assert "error" in err


# --------------------------------------------------------------------- #
# Ledger
# --------------------------------------------------------------------- #


class TestLedger:
    def test_record_is_content_addressed(self, bundle_doc, tmp_path):
        root = str(tmp_path / "ledger")
        rec = ledger_record(bundle_doc, bundle_path="/tmp/b")
        assert rec["run_id"] == record_id(rec)
        rid = append_record(rec, root)
        # A bit-identical rerun dedupes onto the same file.
        rec2 = ledger_record(bundle_doc, bundle_path="/tmp/b")
        assert append_record(rec2, root) == rid
        records = read_ledger(root)
        assert len(records) == 1
        assert records[0]["workload"] == "backbone_churn"
        assert records[0]["oracle_ok"] is True
        assert records[0]["margin_envelope"] is not None
        assert records[0]["margin_time_envelope"] is not None

    def test_find_record_prefix_resolution(self, bundle_doc, tmp_path):
        root = str(tmp_path / "ledger")
        rec = ledger_record(bundle_doc)
        rid = append_record(rec, root)
        assert find_record(rid[:6], root)["run_id"] == rid
        with pytest.raises(LedgerError, match="no ledger record"):
            find_record("zzzz", root)
        other = dict(rec, seed=999)
        other["run_id"] = record_id(other)
        append_record(other, root)
        with pytest.raises(LedgerError, match="ambiguous"):
            find_record("", root)

    def test_diff_is_direction_aware(self, bundle_doc):
        a = ledger_record(bundle_doc)
        b = dict(a)
        b["events_per_sec"] = a["events_per_sec"] / 2  # slower: regression
        b["wall_seconds"] = a["wall_seconds"] / 2  # faster: improvement
        b["oracle_ok"] = False
        b["oracle_violations"] = 3
        rows = {r["field"]: r for r in diff_records(a, b)}
        assert rows["events_per_sec"]["verdict"] == "regression"
        assert rows["wall_seconds"]["verdict"] == "improvement"
        assert rows["oracle_ok"]["verdict"] == "regression"
        assert rows["oracle_violations"]["verdict"] == "regression"
        # Regressions sort first for the human reader.
        verdicts = [r["verdict"] for r in diff_records(a, b)]
        assert verdicts == sorted(
            verdicts,
            key=["regression", "improvement", "neutral"].index,
        )

    def test_cli_history_and_diff(self, capsys, tmp_path):
        ledger = str(tmp_path / "ledger")
        for seed in ("1", "2"):
            code, _out, _err = run_cli(
                capsys,
                "run", "static_path", "--set", "n=8", "horizon=40",
                f"seed={seed}",
                "--bundle", str(tmp_path / f"b{seed}"), "--ledger", ledger,
            )
            assert code == 0
        code, out, _err = run_cli(capsys, "history", "--ledger", ledger, "--json")
        assert code == 0
        records = json.loads(out)["records"]
        assert len(records) == 2
        ids = [r["run_id"] for r in records]
        code, out, _err = run_cli(
            capsys, "diff", ids[0][:8], ids[1][:8], "--ledger", ledger, "--json"
        )
        payload = json.loads(out)
        assert payload["a"] == ids[0] and payload["b"] == ids[1]
        assert code == (1 if payload["regressions"] else 0)
        # Text mode renders a table and the regression verdict line.
        code, out, _err = run_cli(capsys, "diff", ids[0], ids[1], "--ledger", ledger)
        assert "regression" in out
        code, out, _err = run_cli(
            capsys, "history", "--ledger", ledger, "--workload", "nope"
        )
        assert code == 0 and "no matching runs" in out

    def test_cli_history_empty_and_bad_prefix(self, capsys, tmp_path):
        ledger = str(tmp_path / "ledger")
        code, out, _err = run_cli(capsys, "history", "--ledger", ledger)
        assert code == 0 and "no matching runs" in out
        code, _out, err = run_cli(capsys, "diff", "aa", "bb", "--ledger", ledger)
        assert code == 2 and "error" in err

    def test_env_override_sets_default_root(self, monkeypatch, tmp_path):
        from repro.obs import default_ledger_root

        monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "env-ledger"))
        assert default_ledger_root() == str(tmp_path / "env-ledger")


# --------------------------------------------------------------------- #
# Satellites: top guards and per-monitor margin times
# --------------------------------------------------------------------- #


class TestTopGuards:
    def test_counter_going_backwards_blanks_the_rate(self):
        from repro.telemetry.top import _rate

        prev = {"t_wall": 1.0, "counters": {"x": 100}}
        frame = {"t_wall": 2.0, "counters": {"x": 50}}
        assert _rate("x", frame, prev) is None
        frame["counters"]["x"] = 150
        assert _rate("x", frame, prev) == 50.0
        # Non-monotonic t_wall also blanks instead of dividing badly.
        assert _rate("x", {"t_wall": 0.5, "counters": {"x": 150}}, prev) is None

    def test_cli_top_renders_sweep_metrics_dir(self, capsys, tmp_path):
        metrics_dir = str(tmp_path / "metrics")
        code, _out, _err = run_cli(
            capsys,
            "sweep", "static_path", "--set", "horizon=20",
            "--grid", "n=4,6", "--quiet",
            "--metrics-dir", metrics_dir, "--store", str(tmp_path / "store"),
        )
        assert code == 0
        code, out, _err = run_cli(capsys, "top", metrics_dir)
        assert code == 0
        assert "sweep telemetry" in out
        assert "2 points" in out
        assert "events/s" in out

    def test_cli_top_directory_errors(self, capsys, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        code, _out, err = run_cli(capsys, "top", str(empty))
        assert code == 1 and "no metrics files" in err
        code, _out, err = run_cli(capsys, "top", str(empty), "--follow")
        assert code == 2 and "--follow" in err


class TestWorstMarginTime:
    def test_to_metrics_reports_when_margins_tightened(self, armed_run):
        result, _tl = armed_run
        report = result.oracle_report
        assert report is not None
        metrics = report.to_metrics()
        for name, summary in report.monitors.items():
            key = f"oracle_{name}_worst_margin_time"
            assert key in metrics
            assert metrics[key] == summary.worst_margin_time
            if summary.worst_margin is not None:
                assert summary.worst_margin_time is not None
                assert 0.0 <= summary.worst_margin_time <= 40.0
