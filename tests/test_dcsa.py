"""Unit tests for the DCSA node: Algorithm 2's handlers and clock rule."""

from __future__ import annotations

import pytest

from repro import SystemParams
from repro.core.dcsa import DCSANode
from repro.sim.clocks import ConstantRateClock
from repro.sim.simulator import Simulator


class FakeTransport:
    def __init__(self):
        self.sent = []

    def send(self, u, v, payload):
        self.sent.append((u, v, payload))


def make_dcsa(params=None, rate=1.0):
    sim = Simulator()
    params = params or SystemParams.for_network(4)
    tr = FakeTransport()
    node = DCSANode(0, sim, ConstantRateClock(rate), tr, params)
    return sim, node, tr


class TestDiscoveryHandlers:
    def test_discover_add_greets_and_believes(self):
        sim, node, tr = make_dcsa()
        node.on_discover_add(3)
        assert 3 in node.upsilon
        assert tr.sent == [(0, 3, (0.0, 0.0))]
        assert 3 not in node.gamma  # tracking starts only on receipt

    def test_discover_add_idempotent(self):
        sim, node, tr = make_dcsa()
        node.on_discover_add(3)
        node.on_discover_add(3)
        assert node.upsilon == {3}
        assert len(tr.sent) == 2  # re-greeting is harmless

    def test_discover_remove_forgets(self):
        sim, node, tr = make_dcsa()
        node.on_discover_add(3)
        node.on_message(3, (0.0, 0.0))
        assert 3 in node.gamma
        node.on_discover_remove(3)
        assert 3 not in node.gamma and 3 not in node.upsilon

    def test_discover_remove_unknown_is_noop(self):
        sim, node, tr = make_dcsa()
        node.on_discover_remove(9)  # must not raise
        assert 9 not in node.upsilon


class TestMessageHandling:
    def test_receive_tracks_and_adopts_max(self):
        sim, node, tr = make_dcsa()
        node.on_message(2, (5.0, 8.0))
        assert 2 in node.gamma
        row = node.gamma.get(2)
        assert row.l_est == 5.0
        # Lmax adopted; node jumps toward it (new edge: B is huge).
        assert node.max_estimate() == pytest.approx(8.0)
        assert node.logical_clock() == pytest.approx(8.0)

    def test_c_value_set_only_on_gamma_entry(self):
        """C^v_u persists across refreshes (Lemma 6.10's bookkeeping)."""
        sim, node, tr = make_dcsa()
        sim.run_until(1.0)
        node.on_message(2, (1.0, 1.0))
        c_first = node.gamma.get(2).added_h
        sim.run_until(2.0)
        node.on_message(2, (2.0, 2.0))
        assert node.gamma.get(2).added_h == c_first

    def test_c_value_reset_after_reentry(self):
        sim, node, tr = make_dcsa()
        node.on_message(2, (0.0, 0.0))
        sim.run_until(3.0)
        node.on_discover_remove(2)  # evict
        node.on_discover_add(2)
        node.on_message(2, (3.0, 3.0))
        assert node.gamma.get(2).added_h == pytest.approx(3.0)

    def test_estimate_refreshed_every_receipt(self):
        """L^v_u refreshes on every message (Lemma 6.5's contract)."""
        sim, node, tr = make_dcsa()
        node.on_message(2, (1.0, 1.0))
        sim.run_until(1.0)
        node.on_message(2, (9.0, 9.0))
        assert node.gamma.get(2).l_est == pytest.approx(9.0)

    def test_lost_timer_evicts_from_gamma_only(self):
        sim, node, tr = make_dcsa()
        node.on_discover_add(2)
        node.on_message(2, (0.0, 0.0))
        sim.run_until(node.params.delta_t_prime + 0.1)
        assert 2 not in node.gamma  # lost: silent too long
        assert 2 in node.upsilon    # still believed (still greeted on ticks)

    def test_message_rearms_lost_timer(self):
        sim, node, tr = make_dcsa()
        node.on_message(2, (0.0, 0.0))
        dt = node.params.delta_t_prime
        t_half = 0.6 * dt
        sim.schedule_at(t_half, lambda: node.on_message(2, (t_half, t_half)))
        sim.run_until(1.4 * dt)
        assert 2 in node.gamma  # timer restarted at 0.6 dt
        sim.run_until(1.7 * dt + 0.1)
        assert 2 not in node.gamma


class TestTick:
    def test_tick_sends_to_all_believed(self):
        sim, node, tr = make_dcsa()
        node.on_discover_add(1)
        node.on_discover_add(2)
        tr.sent.clear()
        node.start()
        sim.run_until(0.0)
        dests = sorted(v for _u, v, _p in tr.sent)
        assert dests == [1, 2]

    def test_tick_period_subjective(self):
        params = SystemParams.for_network(4)
        sim, node, tr = make_dcsa(params=params, rate=1.0 - params.rho)
        node.on_discover_add(1)
        tr.sent.clear()
        node.start()
        sim.run_until(3.0 * params.tick_interval / (1.0 - params.rho) + 1e-6)
        # Ticks at subjective 0, dH, 2dH, 3dH -> 4 sends at slow rate.
        assert len(tr.sent) == 4


class TestAdjustClock:
    def test_fresh_edge_allows_jump_within_b0_intercept(self):
        """A brand-new edge tolerates any skew up to B(0) > G(n): Lmax
        values within the global-skew envelope are adopted immediately."""
        sim, node, tr = make_dcsa()
        target = 0.9 * node.params.b_intercept
        node.on_message(2, (0.0, target))
        assert node.logical_clock() == pytest.approx(target)

    def test_fresh_edge_still_caps_extreme_jumps(self):
        """Even a fresh edge caps the jump at estimate + B(0) -- values far
        beyond the global-skew envelope are not adopted at once."""
        sim, node, tr = make_dcsa()
        node.on_message(2, (0.0, 10.0 * node.params.b_intercept))
        assert node.logical_clock() == pytest.approx(node.params.b_intercept)

    def test_old_neighbor_constrains(self):
        """Once B has settled, the node cannot exceed estimate + B0."""
        params = SystemParams.for_network(4)
        sim, node, tr = make_dcsa(params=params)
        node.on_message(2, (0.0, 0.0))
        # Age the edge past the B settle time, feeding messages frequently
        # enough that the lost timer never evicts 2 from Gamma (so C^v_u is
        # preserved and B decays all the way to B0).
        settle = params.b_settle_subjective
        t, step = 0.0, 0.5 * params.delta_t_prime
        while t < settle + 1.0:
            t += step
            sim.schedule_at(t, lambda t=t: node.on_message(2, (t, t)))
        sim.run_until(t)
        assert 2 in node.gamma
        assert node.tolerance(2) == pytest.approx(params.b0)
        node.on_message(2, (t - 5.0, t + 500.0))  # v reports low; huge Lmax
        # The low report cannot lower the monotone estimate (~t), so the
        # ceiling is the current estimate + B0.
        expected_ceiling = node.gamma.get(2).l_est + params.b0
        assert node.logical_clock() == pytest.approx(expected_ceiling)

    def test_never_exceeds_lmax(self):
        sim, node, tr = make_dcsa()
        node.on_message(2, (100.0, 10.0))  # estimate high but Lmax low
        assert node.logical_clock() <= node.max_estimate() + 1e-9

    def test_empty_gamma_jumps_to_lmax(self):
        sim, node, tr = make_dcsa()
        node._sync()
        node._raise_max(7.0)
        node._adjust_clock()
        assert node.logical_clock() == pytest.approx(7.0)

    def test_perceived_skew_and_tolerance(self):
        sim, node, tr = make_dcsa()
        node.on_message(2, (3.0, 3.0))
        assert node.perceived_skew(2) == pytest.approx(node.logical_clock() - 3.0)
        assert node.tolerance(2) == pytest.approx(node.params.b_function(0.0))
        assert node.perceived_skew(9) is None
        assert node.tolerance(9) is None
