"""Tests for the shared property-testing library (repro.testing.strategies)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.harness.runner import ExperimentConfig, run_experiment
from repro.sweep.spec import SweepSpec
from repro.testing import strategies as strat


class TestSeedDrivenLayer:
    def test_fuzz_config_is_deterministic(self):
        a = strat.fuzz_config(7)
        b = strat.fuzz_config(7)
        assert a.to_dict() == b.to_dict()
        assert strat.fuzz_config(8).to_dict() != a.to_dict()

    def test_fuzz_configs_are_serializable(self):
        for seed in range(8):
            cfg = strat.fuzz_config(seed)
            assert ExperimentConfig.from_dict(cfg.to_dict()).to_dict() == cfg.to_dict()

    def test_fuzz_config_backbone_always_present(self):
        # Interval connectivity is the theorems' premise: the initial
        # topology must be connected and (rewirer-) protected.
        for seed in range(8):
            cfg = strat.fuzz_config(seed)
            n = cfg.params.n
            adj = {i: set() for i in range(n)}
            for u, v in cfg.initial_edges:
                adj[u].add(v)
                adj[v].add(u)
            seen, stack = {0}, [0]
            while stack:
                x = stack.pop()
                for y in adj[x]:
                    if y not in seen:
                        seen.add(y)
                        stack.append(y)
            assert len(seen) == n, f"seed {seed}: disconnected backbone"

    def test_fuzz_sweep_spec_expands_small(self):
        for seed in range(6):
            spec = strat.fuzz_sweep_spec(seed)
            assert isinstance(spec, SweepSpec)
            configs = spec.expand()
            assert 1 <= len(configs) <= 8
            for cfg in configs:
                assert cfg.params.n <= 6 and cfg.horizon <= 25.0

    def test_make_topology_unknown_name(self):
        with pytest.raises(KeyError, match="unknown topology"):
            strat.make_topology("moebius", 8)


class TestHypothesisLayer:
    @settings(max_examples=20, deadline=None)
    @given(params=strat.system_params(min_n=2, max_n=16))
    def test_system_params_always_validate(self, params):
        params.validate()  # must not raise

    @settings(max_examples=20, deadline=None)
    @given(topo=strat.topologies(4, 10))
    def test_topologies_are_connected(self, topo):
        name, n, edges = topo
        ids = {x for e in edges for x in e}
        adj = {i: set() for i in ids}
        for u, v in edges:
            adj[u].add(v)
            adj[v].add(u)
        start = next(iter(ids))
        seen, stack = {start}, [start]
        while stack:
            x = stack.pop()
            for y in adj[x]:
                if y not in seen:
                    seen.add(y)
                    stack.append(y)
        assert seen == ids

    @settings(max_examples=15, deadline=None)
    @given(cfg=strat.experiment_configs(4, 10, adversarial=True))
    def test_generated_configs_serialize_and_validate(self, cfg):
        cfg.params.validate()
        assert ExperimentConfig.from_dict(cfg.to_dict()).to_dict() == cfg.to_dict()

    @settings(max_examples=10, deadline=None)
    @given(spec=strat.sweep_specs())
    def test_generated_sweep_specs_expand(self, spec):
        configs = spec.expand()
        assert len(configs) == len(spec)
        for cfg in configs:
            cfg.to_dict()  # must be serializable (sweepable)

    @settings(max_examples=5, deadline=None)
    @given(cfg=strat.experiment_configs(4, 6, horizon=15.0))
    def test_generated_configs_actually_run(self, cfg):
        res = run_experiment(cfg)
        assert res.events_dispatched > 0
