"""Golden-value regression pins for the core algorithm.

Three canned workloads with fixed seeds must reproduce these exact
metrics.  The simulation is fully deterministic (seeded RNG streams,
priority-ordered event queue), so *any* drift here means the core
algorithm, the event ordering, or an RNG stream changed behaviour --
silently, if no functional test happened to cover it.  If a change is
intentional, re-pin the values and say why in the commit message.

Values were produced by ``run_experiment`` on the configs below; re-derive
with::

    PYTHONPATH=src python -c "
    from repro.harness import configs
    from repro.harness.runner import run_experiment
    res = run_experiment(configs.static_path(8, horizon=60.0, seed=3))
    print(res.max_global_skew, res.max_local_skew, res.total_jumps())"
"""

from __future__ import annotations

import pytest

from repro.harness import configs
from repro.harness.runner import run_experiment

#: (workload id, config factory, max_global_skew, max_local_skew, jumps,
#:  events_dispatched).  The event count pins the kernel's *event volume*:
#: a typed-kernel or scheduling refactor that silently changes how many
#: records are dispatched (extra re-arms, lost discoveries, duplicated
#: samples) fails loudly here even if the physics happens to agree.
GOLDEN = [
    (
        "static_path",
        lambda: configs.static_path(8, horizon=60.0, seed=3),
        0.7961767536525315,
        0.46151843494374845,
        38,
        2690,
    ),
    (
        "backbone_churn",
        lambda: configs.backbone_churn(8, horizon=60.0, seed=5),
        0.31793387974983034,
        0.31793387974983034,
        62,
        3700,
    ),
    (
        "adversarial_drift",
        lambda: configs.adversarial_drift(8, horizon=60.0, seed=7),
        0.6600000000000108,
        0.4814911541675997,
        35,
        2708,
    ),
]


@pytest.mark.parametrize(
    "name,make,global_skew,local_skew,jumps,events",
    GOLDEN,
    ids=[g[0] for g in GOLDEN],
)
def test_golden_metrics_are_stable(name, make, global_skew, local_skew, jumps, events):
    res = run_experiment(make())
    assert res.max_global_skew == pytest.approx(global_skew, rel=1e-12, abs=1e-12)
    assert res.max_local_skew == pytest.approx(local_skew, rel=1e-12, abs=1e-12)
    assert res.total_jumps() == jumps
    assert res.events_dispatched == events


def test_golden_runs_are_rerun_stable():
    """The same config twice in one process gives bit-identical metrics."""
    make = GOLDEN[0][1]
    a, b = run_experiment(make()), run_experiment(make())
    assert a.max_global_skew == b.max_global_skew
    assert a.max_local_skew == b.max_local_skew
    assert a.total_jumps() == b.total_jumps()
    assert a.events_dispatched == b.events_dispatched
