"""Tests for the adaptive adversary subsystem (:mod:`repro.adversary`).

Covers the steerable clock, each adversary's mechanics and legality
(drift stays in the envelope, delays stay in ``[0, T]``, topology moves
stay certifiably T-interval connected), the harness integration
(``ExperimentConfig.adversary`` + ``AdversaryRef``), effectiveness against
the matched random baseline, and exact reproducibility of adversarial runs.
"""

from __future__ import annotations

import pytest

from repro.adversary import (
    AdaptiveMaskingDelayPolicy,
    CombinedAdversary,
    DriftAdversary,
    GreedyTopologyAdversary,
    scan_interval_connectivity,
)
from repro.harness import AdversaryRef, build_experiment, configs, run_experiment
from repro.sim.clocks import SteerableClock, validate_drift
from repro.sweep.engine import summarize_run


# ---------------------------------------------------------------------- #
# SteerableClock
# ---------------------------------------------------------------------- #


class TestSteerableClock:
    def test_starts_at_zero_with_initial_rate(self):
        c = SteerableClock(1.5)
        assert c.value(0.0) == 0.0
        assert c.value(2.0) == 3.0
        assert c.rate_at(1.0) == 1.5

    def test_value_is_continuous_across_rate_changes(self):
        c = SteerableClock(1.0)
        c.set_rate(2.0, 2.0)
        c.set_rate(3.0, 0.5)
        assert c.value(2.0) == pytest.approx(2.0)
        assert c.value(3.0) == pytest.approx(4.0)
        assert c.value(5.0) == pytest.approx(5.0)

    def test_time_at_inverts_value(self):
        c = SteerableClock(1.0)
        c.set_rate(1.0, 1.25)
        c.set_rate(4.0, 0.8)
        for t in (0.0, 0.5, 1.0, 2.7, 4.0, 9.3):
            assert c.time_at(c.value(t)) == pytest.approx(t)

    def test_same_time_change_replaces_tail(self):
        c = SteerableClock(1.0)
        c.set_rate(2.0, 1.5)
        c.set_rate(2.0, 0.5)
        assert c.rate_at(3.0) == 0.5
        assert c.value(4.0) == pytest.approx(2.0 + 2.0 * 0.5)

    def test_out_of_order_change_rejected(self):
        c = SteerableClock(1.0)
        c.set_rate(5.0, 1.1)
        with pytest.raises(ValueError, match="time-ordered"):
            c.set_rate(4.0, 1.0)

    def test_envelope_enforced_and_reported(self):
        c = SteerableClock(1.0, rho=0.05)
        assert c.rate_bounds() == (0.95, 1.05)
        validate_drift(c, 0.05)
        with pytest.raises(ValueError, match="envelope"):
            c.set_rate(1.0, 1.2)
        with pytest.raises(ValueError, match="envelope"):
            SteerableClock(0.5, rho=0.05)

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            SteerableClock(0.0)


# ---------------------------------------------------------------------- #
# Drift adversary
# ---------------------------------------------------------------------- #


class TestDriftAdversary:
    def test_replaces_clocks_and_splits_rates(self):
        cfg = configs.adversarial_drift(8, period=5.0, horizon=40.0)
        exp = build_experiment(cfg)
        adv = exp.adversary
        assert isinstance(adv, DriftAdversary)
        for node in exp.nodes.values():
            assert isinstance(node.clock, SteerableClock)
        exp.sim.run_until(20.0)
        rates = sorted(adv.rates_now().values())
        rho = cfg.params.rho
        assert rates[0] == pytest.approx(1.0 - rho)
        assert rates[-1] == pytest.approx(1.0 + rho)
        assert sum(1 for r in rates if r < 1.0) == 4
        assert adv.rounds >= 3

    def test_all_rates_stay_in_envelope(self):
        cfg = configs.adversarial_drift(6, period=3.0, horizon=60.0)
        exp = build_experiment(cfg)
        exp.sim.run_until(60.0)
        for node in exp.nodes.values():
            validate_drift(node.clock, cfg.params.rho)

    def test_strength_zero_is_perfect_clocks(self):
        res = run_experiment(
            configs.adversarial_drift(6, strength=0.0, horizon=40.0)
        )
        assert res.max_global_skew == pytest.approx(0.0, abs=1e-9)

    def test_widens_skew_over_unsteered_perfect_clocks(self):
        adv = run_experiment(configs.adversarial_drift(8, horizon=100.0))
        base_cfg = configs.adversarial_drift(8, horizon=100.0)
        base_cfg.adversary = None
        base = run_experiment(base_cfg)
        assert adv.max_global_skew > base.max_global_skew

    def test_strength_validated(self):
        with pytest.raises(ValueError, match="strength"):
            DriftAdversary(0.01, 5.0, strength=1.5)

    def test_adversary_horizon_respected_below_run_horizon(self):
        # Regression: with adversary horizon < first period the adversary
        # must never act, even though the run itself continues.
        cfg = configs.adversarial_drift(6, period=15.0, horizon=40.0)
        cfg.adversary = AdversaryRef(
            "adaptive_drift", {"period": 15.0, "horizon": 10.0}
        )
        exp = build_experiment(cfg)
        exp.sim.run_until(40.0)
        assert exp.adversary.rounds == 0
        assert all(r == 1.0 for r in exp.adversary.rates_now().values())


# ---------------------------------------------------------------------- #
# Delay adversary
# ---------------------------------------------------------------------- #


class _StubNode:
    def __init__(self, value: float) -> None:
        self._value = value

    def logical_clock(self, t=None) -> float:
        return self._value


class TestDelayAdversary:
    def test_policy_masks_by_clock_order(self):
        nodes = {0: _StubNode(10.0), 1: _StubNode(7.0)}
        policy = AdaptiveMaskingDelayPolicy(nodes, 1.0)
        assert policy.delay(0, 1, 0.0) == 1.0  # ahead sender: stale
        assert policy.delay(1, 0, 0.0) == 0.0  # behind sender: instant
        assert policy.max_bound() == 1.0

    def test_policy_edge_restriction_falls_back(self):
        from repro.network.channels import ConstantDelay

        nodes = {0: _StubNode(5.0), 1: _StubNode(1.0), 2: _StubNode(0.0)}
        policy = AdaptiveMaskingDelayPolicy(
            nodes, 1.0, edges=[(0, 1)], fallback=ConstantDelay(0.25)
        )
        assert policy.delay(0, 1, 0.0) == 1.0
        assert policy.delay(0, 2, 0.0) == 0.25

    def test_installs_over_transport_and_run_stays_legal(self):
        cfg = configs.adversarial_delay(8, horizon=60.0)
        exp = build_experiment(cfg)
        assert isinstance(exp.transport.delay_policy, AdaptiveMaskingDelayPolicy)
        res = exp.run()
        # Transport validates every produced delay against max_delay.
        assert res.transport_stats["delivered"] > 0

    def test_masking_raises_skew_over_uniform_delays(self):
        adv = run_experiment(configs.adversarial_delay(8, horizon=100.0))
        base = run_experiment(
            configs.static_path(8, horizon=100.0, clock_spec="split")
        )
        assert adv.max_global_skew > base.max_global_skew


# ---------------------------------------------------------------------- #
# Greedy topology adversary
# ---------------------------------------------------------------------- #


class TestGreedyTopologyAdversary:
    def test_protected_backbone_never_removed(self):
        cfg = configs.greedy_topology(10, horizon=80.0)
        res = run_experiment(cfg)
        for u, v in cfg.initial_edges:
            assert res.graph.exists_throughout(u, v, 0.0, 80.0)

    def test_moves_committed_and_schedule_certifies(self):
        cfg = configs.greedy_topology(10, horizon=80.0)
        exp = build_experiment(cfg)
        res = exp.run()
        assert exp.adversary.moves > 0
        p = cfg.params
        report = scan_interval_connectivity(
            res.graph, p.max_delay + p.discovery_bound, 80.0
        )
        assert report.ok, report.summary()

    def test_beats_random_rewirer_matched(self):
        # The headline acceptance property, on a fast configuration.
        for seed in (0, 1):
            greedy = run_experiment(
                configs.greedy_topology(12, horizon=120.0, seed=seed)
            )
            random = run_experiment(
                configs.backbone_churn(12, horizon=120.0, seed=seed)
            )
            assert greedy.max_local_skew > random.max_local_skew

    def test_hold_aligned_with_period_does_not_crash(self):
        # Regression: a retraction and a rewiring round sharing a timestamp
        # must not re-insert the just-retracted edge at the same instant
        # (the model forbids same-instant remove+add of one edge).
        res = run_experiment(
            configs.greedy_topology(10, hold=5.0, period=5.0, horizon=60.0)
        )
        assert res.max_local_skew > 0.0

    def test_hold_retracts_inserted_edges(self):
        cfg = configs.greedy_topology(8, period=5.0, hold=2.0, horizon=40.0)
        exp = build_experiment(cfg)
        exp.sim.run_until(40.0)
        adv = exp.adversary
        # Flash edges from earlier rounds are gone again.
        assert len(adv.extras()) <= 1
        assert adv.moves >= 8  # insert + retract per round

    def test_unprotected_run_stays_connected(self):
        from repro.network.graph import DynamicGraph
        from repro.sim.simulator import Simulator

        adv = GreedyTopologyAdversary(4, 1, 5.0, protected=(), horizon=20.0)
        sim = Simulator()
        graph = DynamicGraph(range(4), [(0, 1), (1, 2), (2, 3)])
        nodes = {i: _StubNode(float(i)) for i in range(4)}
        adv.install(sim, graph, nodes)
        sim.run_until(20.0)
        assert adv.moves > 0
        assert graph.is_connected_now()
        # With no protected set, snapshot connectivity is still guaranteed
        # (every removal passes through the guard's connectivity check).
        for t in (5.0, 10.0, 15.0, 20.0):
            assert graph.is_connected_throughout(t, t)

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="n >= 2"):
            GreedyTopologyAdversary(1, 1, 5.0)
        with pytest.raises(ValueError, match="k_extra"):
            GreedyTopologyAdversary(4, 0, 5.0)
        with pytest.raises(ValueError, match="hold"):
            GreedyTopologyAdversary(4, 1, 5.0, hold=0.0)


# ---------------------------------------------------------------------- #
# Harness integration
# ---------------------------------------------------------------------- #


class TestHarnessIntegration:
    def test_adversary_ref_builds_and_installs(self, params8, rng):
        ref = AdversaryRef("adaptive_drift", {"period": 5.0})
        adv = ref(params8, rng)
        assert isinstance(adv, DriftAdversary)

    def test_combined_builder_composes_parts(self, params8, rng):
        ref = AdversaryRef(
            "combined",
            {"drift": {"period": 5.0}, "delay": {}},
        )
        adv = ref(params8, rng)
        assert isinstance(adv, CombinedAdversary)
        assert len(adv.parts) == 2

    def test_unknown_adversary_name_rejected_eagerly(self):
        with pytest.raises(KeyError, match="no_such_adversary"):
            AdversaryRef("no_such_adversary", {})

    def test_combined_workload_runs_and_certifies(self):
        res = run_experiment(configs.combined_adversary(8, horizon=60.0))
        m = summarize_run(res)
        assert m["tic_ok"] is True
        assert m["tic_windows"] > 0

    def test_non_adversarial_runs_skip_certification(self):
        res = run_experiment(configs.static_path(6, horizon=30.0))
        m = summarize_run(res)
        assert m["tic_ok"] is None

    def test_adversarial_run_is_exactly_reproducible(self):
        cfg = lambda: configs.combined_adversary(8, horizon=50.0, seed=3)
        a = summarize_run(run_experiment(cfg()))
        b = summarize_run(run_experiment(cfg()))
        assert a == b

    def test_spec_refuses_desyncing_sweeps_over_adversarial_configs(self):
        # AdversaryRef kwargs bake horizon and the certification interval;
        # sweeping those fields over a *concrete* config would silently run
        # a weaker adversary (use a named workload base instead).
        from repro.sweep import SweepSpec, grid

        cfg = configs.greedy_topology(8, horizon=40.0)
        with pytest.raises(KeyError, match="adversary"):
            SweepSpec(cfg, axes=[grid(horizon=[40.0, 80.0])]).expand()
        with pytest.raises(KeyError, match="interval"):
            SweepSpec(cfg, axes=[grid(max_delay=[1.0, 2.0])]).expand()
        # The named-workload route rebuilds the adversary per point: fine.
        spec = SweepSpec("greedy_topology", base={"n": 8}, axes=[grid(horizon=[40.0, 80.0])])
        assert len(spec.expand()) == 2

    def test_tidy_rows_surface_adversary_coordinates(self):
        from repro.sweep import SweepEngine, tidy_rows

        result = SweepEngine().run(
            [
                configs.adversarial_drift(6, strength=0.5, horizon=20.0),
                configs.static_path(6, horizon=20.0),
            ]
        )
        adv_row, plain_row = tidy_rows(result)
        assert adv_row["adversary"] == "adaptive_drift"
        assert adv_row["adv_strength"] == 0.5
        assert "adversary" not in plain_row
        # Mixed sweeps keep adversary columns even when a plain row comes
        # first: default columns are the union across rows.
        from repro.sweep import sweep_csv

        header = sweep_csv(list(reversed(result.rows))).splitlines()[0]
        assert "adv_strength" in header

    def test_adversarial_runs_reproduce_through_the_store(self, tmp_path):
        from repro.sweep import ResultStore, SweepEngine

        cfgs = [configs.greedy_topology(8, horizon=40.0, seed=7)]
        store = ResultStore(tmp_path / "store")
        first = SweepEngine(store=store).run(cfgs)
        second = SweepEngine(store=store).run(cfgs)
        assert second.rows[0].cached
        assert first.rows[0].metrics == second.rows[0].metrics
        # And a cold recompute agrees bit-for-bit with the cached metrics.
        third = SweepEngine(store=None).run(cfgs)
        assert third.rows[0].metrics == first.rows[0].metrics
