"""Tests for the simulation kernel: scheduling, execution, periodic hooks."""

from __future__ import annotations

import pytest

from repro.sim.events import PRIORITY_SAMPLE, PRIORITY_TOPOLOGY
from repro.sim.simulator import SimulationError, Simulator
from repro.sim.tracing import TraceRecorder


class TestScheduling:
    def test_schedule_at_and_run(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(5.0, lambda: fired.append(sim.now))
        sim.run_until(10.0)
        assert fired == [5.0]
        assert sim.now == 10.0

    def test_schedule_in(self):
        sim = Simulator()
        fired = []
        sim.schedule_in(2.5, lambda: fired.append(sim.now))
        sim.run_until(3.0)
        assert fired == [2.5]

    def test_past_scheduling_rejected(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(4.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_in(-1.0, lambda: None)

    def test_same_time_scheduling_allowed(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: sim.schedule_at(1.0, lambda: fired.append("x")))
        sim.run_until(2.0)
        assert fired == ["x"]

    def test_cancel(self):
        sim = Simulator()
        fired = []
        h = sim.schedule_at(1.0, lambda: fired.append("x"))
        assert sim.cancel(h) is True
        sim.run_until(2.0)
        assert fired == []


class TestExecution:
    def test_events_cascade(self):
        sim = Simulator()
        log = []

        def first():
            log.append(("first", sim.now))
            sim.schedule_in(1.0, second)

        def second():
            log.append(("second", sim.now))

        sim.schedule_at(1.0, first)
        sim.run_until(10.0)
        assert log == [("first", 1.0), ("second", 2.0)]

    def test_run_until_does_not_execute_beyond_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(5.0, lambda: fired.append("in"))
        sim.schedule_at(15.0, lambda: fired.append("out"))
        sim.run_until(10.0)
        assert fired == ["in"]
        sim.run_until(20.0)
        assert fired == ["in", "out"]

    def test_run_backwards_rejected(self):
        sim = Simulator()
        sim.run_until(10.0)
        with pytest.raises(SimulationError):
            sim.run_until(5.0)

    def test_run_until_idle(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(1))
        sim.schedule_at(2.0, lambda: fired.append(2))
        sim.run_until_idle()
        assert fired == [1, 2]
        assert sim.now == 2.0

    def test_max_events_guard(self):
        sim = Simulator(max_events=10)

        def storm():
            sim.schedule_in(0.001, storm)

        sim.schedule_at(0.0, storm)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run_until(1.0)

    def test_event_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule_at(float(i), lambda: None)
        sim.run_until(10.0)
        assert sim.events_dispatched == 5

    def test_priority_ordering_within_timestamp(self):
        sim = Simulator()
        log = []
        sim.schedule_at(1.0, lambda: log.append("timer"))
        sim.schedule_at(1.0, lambda: log.append("sample"), priority=PRIORITY_SAMPLE)
        sim.schedule_at(1.0, lambda: log.append("topo"), priority=PRIORITY_TOPOLOGY)
        sim.run_until(2.0)
        assert log == ["topo", "timer", "sample"]


class TestPeriodic:
    def test_every_fires_on_schedule(self):
        sim = Simulator()
        ts = []
        sim.every(2.0, ts.append, end=9.0)
        sim.run_until(10.0)
        assert ts == [0.0, 2.0, 4.0, 6.0, 8.0]

    def test_every_with_start(self):
        sim = Simulator()
        ts = []
        sim.every(1.0, ts.append, start=3.0, end=5.0)
        sim.run_until(6.0)
        assert ts == [3.0, 4.0, 5.0]

    def test_every_bad_interval(self):
        with pytest.raises(SimulationError):
            Simulator().every(0.0, lambda t: None)

    def test_every_observes_after_model_activity(self):
        """PRIORITY_SAMPLE fires after same-timestamp model events."""
        sim = Simulator()
        state = {"x": 0}
        observed = []
        sim.schedule_at(2.0, lambda: state.__setitem__("x", 42))
        sim.every(2.0, lambda t: observed.append((t, state["x"])), end=2.0)
        sim.run_until(3.0)
        assert observed == [(0.0, 0), (2.0, 42)]


class TestTracing:
    def test_trace_records(self):
        tr = TraceRecorder()
        tr.record(1.0, "send", 3, 4)
        tr.record(2.0, "recv", 4, 3)
        assert len(tr) == 2
        assert tr.filter(kind="send")[0].subject == 3

    def test_disabled_trace_drops(self):
        tr = TraceRecorder(enabled=False)
        tr.record(1.0, "send", 3)
        assert len(tr) == 0

    def test_capacity_trims(self):
        tr = TraceRecorder(capacity=3)
        for i in range(10):
            tr.record(float(i), "k", i)
        assert len(tr) == 3
        assert tr.dropped == 7
        assert [r.subject for r in tr] == [7, 8, 9]

    def test_kind_filter(self):
        tr = TraceRecorder(kinds=["send"])
        tr.record(1.0, "send", 1)
        tr.record(1.0, "recv", 2)
        assert len(tr) == 1

    def test_records_returns_fresh_list(self):
        tr = TraceRecorder()
        tr.record(1.0, "send", 1)
        snapshot = tr.records
        snapshot.append("junk")
        assert len(tr) == 1

    def test_capacity_eviction_cost_is_independent_of_capacity(self):
        """Appends at capacity must be O(1), not O(capacity).

        The list-based predecessor trimmed with ``del lst[:1]`` -- an
        O(capacity) shift per append once full, i.e. a 1000x per-append
        penalty at capacity 100k vs 100. With deque eviction the two
        capacities cost the same; the bound below fails at ~10x, far
        under the regression's 1000x but over any plausible noise.
        """
        import time as _time

        def append_cost(capacity: int, appends: int) -> float:
            tr = TraceRecorder(capacity=capacity)
            for i in range(capacity):  # fill to the brim first
                tr.record(0.0, "k", i)
            t0 = _time.perf_counter()
            for i in range(appends):
                tr.record(1.0, "k", i)
            return _time.perf_counter() - t0

        small = append_cost(100, 5_000)
        large = append_cost(100_000, 5_000)
        assert large < small * 10 + 0.05, (
            f"eviction cost scales with capacity: {large:.4f}s at 100k "
            f"vs {small:.4f}s at 100"
        )


class TestPeriodicValidation:
    def test_every_rejects_end_before_start(self):
        """An empty sampling window is a bug at the call site, not a
        sampler that silently fires once and never re-arms."""
        sim = Simulator()
        with pytest.raises(SimulationError, match="empty"):
            sim.every(1.0, lambda t: None, start=5.0, end=3.0)

    def test_every_rejects_end_before_now(self):
        sim = Simulator()
        sim.run_until(4.0)
        with pytest.raises(SimulationError, match="empty"):
            sim.every(1.0, lambda t: None, end=2.0)

    def test_every_end_equal_to_start_fires_once(self):
        sim = Simulator()
        ts = []
        sim.every(1.0, ts.append, start=2.0, end=2.0)
        sim.run_until(5.0)
        assert ts == [2.0]


class TestTypedDispatch:
    def test_typed_event_routes_through_handler(self):
        from repro.sim.events import KIND_DELIVER

        sim = Simulator()
        seen = []
        sim.set_handler(KIND_DELIVER, lambda ev: seen.append((sim.now, ev.a, ev.b)))
        sim.schedule_typed(2.0, 1, KIND_DELIVER, 7, 8)
        sim.run_until(3.0)
        assert seen == [(2.0, 7, 8)]

    def test_conflicting_handler_registration_raises(self):
        from repro.sim.events import KIND_DELIVER

        sim = Simulator()
        sim.set_handler(KIND_DELIVER, lambda ev: None)
        with pytest.raises(SimulationError, match="already has a handler"):
            sim.set_handler(KIND_DELIVER, lambda ev: None)

    def test_same_handler_registration_is_idempotent(self):
        from repro.sim.events import KIND_TIMER

        def handler(ev):
            pass

        sim = Simulator()
        sim.set_handler(KIND_TIMER, handler)
        sim.set_handler(KIND_TIMER, handler)  # no-op, no raise

    def test_callback_kind_cannot_be_overridden(self):
        from repro.sim.events import KIND_CALLBACK

        sim = Simulator()
        with pytest.raises(SimulationError, match="invalid handler kind"):
            sim.set_handler(KIND_CALLBACK, lambda ev: None)

    def test_unhandled_typed_kind_raises_at_dispatch(self):
        from repro.sim.events import KIND_DELIVER

        sim = Simulator()
        sim.schedule_typed(1.0, 1, KIND_DELIVER, 0, 1, label="orphan")
        with pytest.raises(SimulationError, match="no handler"):
            sim.run_until(2.0)

    def test_dispatched_typed_records_are_recycled(self):
        """The steady state allocates nothing: one record serves the run."""
        from repro.sim.events import KIND_DELIVER

        sim = Simulator()
        sim.set_handler(KIND_DELIVER, lambda ev: None)
        for t in range(1, 6):
            sim.schedule_typed(float(t), 1, KIND_DELIVER, t, t)
        sim.run_until(10.0)
        assert sim.queue.pool_size == 5
        assert sim.queue.raw_size == 0

    def test_periodic_sampler_reuses_one_record(self):
        """sim.every() re-arms its own KIND_SAMPLE record in place."""
        sim = Simulator()
        ts = []
        sim.every(1.0, ts.append, end=50.0)
        sim.run_until(50.0)
        assert len(ts) == 51
        # 51 firings never grew the heap beyond the single live record and
        # never allocated more than that one reusable record.
        assert sim.queue.raw_size == 0
        assert sim.queue.pool_size <= 1

    def test_topology_kind_applies_graph_mutation(self):
        from repro.network.graph import DynamicGraph
        from repro.sim.events import KIND_TOPOLOGY, PRIORITY_TOPOLOGY

        sim = Simulator()
        graph = DynamicGraph(range(3))
        sim.schedule_typed(1.0, PRIORITY_TOPOLOGY, KIND_TOPOLOGY, graph, True, 0, 1)
        sim.schedule_typed(2.0, PRIORITY_TOPOLOGY, KIND_TOPOLOGY, graph, False, 0, 1)
        sim.run_until(1.5)
        assert graph.has_edge(0, 1)
        sim.run_until(3.0)
        assert not graph.has_edge(0, 1)
