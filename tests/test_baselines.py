"""Tests for the baseline algorithms (max-sync, static gradient, free)."""

from __future__ import annotations

import pytest

from repro import SystemParams
from repro.baselines import FreeRunningNode, MaxSyncNode, StaticGradientNode
from repro.harness import configs, run_experiment
from repro.analysis import envelope_violations, max_global_skew
from repro.sim.clocks import ConstantRateClock
from repro.sim.simulator import Simulator


class FakeTransport:
    def __init__(self):
        self.sent = []

    def send(self, u, v, payload):
        self.sent.append((u, v, payload))


class TestMaxSyncUnit:
    def test_jumps_to_received_max(self):
        sim = Simulator()
        params = SystemParams.for_network(4)
        node = MaxSyncNode(0, sim, ConstantRateClock(1.0), FakeTransport(), params)
        node.on_message(1, (5.0, 30.0))
        assert node.logical_clock() == pytest.approx(30.0)

    def test_no_gradient_constraint(self):
        """Max-sync happily jumps arbitrarily far past a neighbour."""
        sim = Simulator()
        params = SystemParams.for_network(4)
        node = MaxSyncNode(0, sim, ConstantRateClock(1.0), FakeTransport(), params)
        node.on_message(1, (0.0, 1000.0))  # neighbour at 0, max huge
        assert node.logical_clock() == pytest.approx(1000.0)

    def test_tick_broadcasts(self):
        sim = Simulator()
        params = SystemParams.for_network(4)
        tr = FakeTransport()
        node = MaxSyncNode(0, sim, ConstantRateClock(1.0), tr, params)
        node.on_discover_add(1)
        node.on_discover_add(2)
        tr.sent.clear()
        node.start()
        sim.run_until(0.0)
        assert sorted(v for _u, v, _p in tr.sent) == [1, 2]


class TestStaticGradientUnit:
    def test_constant_tolerance(self):
        sim = Simulator()
        params = SystemParams.for_network(4)
        node = StaticGradientNode(0, sim, ConstantRateClock(1.0), FakeTransport(), params)
        node.on_message(1, (0.0, 100.0))
        assert node.tolerance(1) == params.b0
        # Jump capped at estimate + B0 immediately (no new-edge grace).
        assert node.logical_clock() == pytest.approx(params.b0)


class TestFreeRunningUnit:
    def test_logical_equals_hardware(self):
        sim = Simulator()
        params = SystemParams.for_network(4)
        node = FreeRunningNode(0, sim, ConstantRateClock(1.03), FakeTransport(), params)
        node.start()
        sim.run_until(10.0)
        assert node.logical_clock() == pytest.approx(10.3)

    def test_ignores_everything(self):
        sim = Simulator()
        params = SystemParams.for_network(4)
        node = FreeRunningNode(0, sim, ConstantRateClock(1.0), FakeTransport(), params)
        node.on_message(1, (0.0, 99.0))
        node.on_discover_add(1)
        node.on_discover_remove(1)
        assert node.logical_clock() == pytest.approx(0.0)


class TestBaselineBehaviour:
    """Comparative behaviour on identical workloads (the paper's story)."""

    def test_free_running_drifts_linearly(self):
        cfg = configs.static_path(6, horizon=100.0, algorithm="free",
                                  clock_spec="split")
        res = run_experiment(cfg)
        # Split clocks diverge at exactly 2 rho t.
        expected = 2 * res.params.rho * 100.0
        assert res.max_global_skew == pytest.approx(expected, rel=0.05)

    def test_max_sync_bounds_global_skew(self):
        cfg = configs.static_path(10, horizon=150.0, algorithm="max",
                                  clock_spec="split")
        res = run_experiment(cfg)
        assert res.max_global_skew <= res.params.global_skew_bound

    def test_static_gradient_ok_on_static_network(self):
        """On a static network the [13] baseline honours the envelope."""
        cfg = configs.static_path(10, horizon=150.0, algorithm="static",
                                  clock_spec="split")
        res = run_experiment(cfg)
        chk = envelope_violations(res.record, res.params)
        assert chk.compliant

    def test_static_gradient_violates_contract_on_new_edge(self):
        """Under the adversarial beta execution, a long-range insertion
        carries skew ~ T * dist >> B0 + 2 rho W: the constant-B0 baseline's
        per-edge contract is violated instantly, while the DCSA's dynamic
        envelope (B(age) large for young edges) excuses exactly this case."""
        from repro.core import skew_bounds as sb
        from repro.lowerbound.executions import build_execution_pair
        from repro.lowerbound.mask import DelayMask
        from repro.lowerbound.scenario import _MaskedRun
        from repro.network.topology import path_edges
        from repro.sim.events import PRIORITY_SAMPLE, PRIORITY_TOPOLOGY

        n = 24
        params = SystemParams.for_network(n, rho=0.05)
        edges = path_edges(n)
        mask = DelayMask({}, params.max_delay)
        pair = build_execution_pair(list(range(n)), edges, mask, 0, params)
        t_insert = 1.05 * pair.full_skew_time(n - 1, params.rho)
        readings = {}
        for algo in ("static", "dcsa"):
            run = _MaskedRun(list(range(n)), edges, pair.beta_clocks,
                             pair.beta_policy, params, algo)
            run.sim.schedule_at(
                t_insert,
                lambda run=run: run.graph.add_edge(0, n - 1, run.sim.now),
                priority=PRIORITY_TOPOLOGY,
            )
            probe_t = t_insert + 1.0

            def probe(run=run, algo=algo):
                readings[algo] = abs(
                    run.logical(0, probe_t) - run.logical(n - 1, probe_t)
                )

            run.sim.schedule_at(probe_t, probe, priority=PRIORITY_SAMPLE)
            run.run_until(probe_t)
        stable = sb.stable_local_skew(params)
        # Both algorithms carry the adversarial skew on the new edge...
        assert readings["static"] > stable
        # ...but only the DCSA has a contract covering it: its envelope at
        # age ~1 is far above the skew, while constant-B0 claims <= ~B0.
        assert readings["dcsa"] <= sb.dynamic_local_skew(params, 1.0)
        assert readings["static"] > params.b0 + 2 * params.rho * params.tau

    def test_dcsa_vs_max_local_skew_after_insertion(self):
        """Same dynamic workload: DCSA keeps the envelope, max-sync has no
        per-edge guarantee but both bound global skew."""
        n = 20
        for algo in ("dcsa", "max"):
            cfg = configs.edge_insertion(n, t_insert=80.0, algorithm=algo,
                                         horizon=160.0)
            res = run_experiment(cfg)
            assert res.max_global_skew <= res.params.global_skew_bound
            if algo == "dcsa":
                chk = envelope_violations(res.record, res.params)
                assert chk.compliant
