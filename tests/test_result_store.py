"""Tests for the content-addressed result store."""

from __future__ import annotations

import json

import pytest

from repro.harness import configs
from repro.sweep import ResultStore, config_hash


@pytest.fixture
def store(tmp_path) -> ResultStore:
    return ResultStore(tmp_path / "cache")


def _key(seed: int = 0) -> tuple[str, dict]:
    cfg = configs.static_path(6, horizon=30.0, seed=seed).to_dict()
    return config_hash(cfg), cfg


class TestHashing:
    def test_hash_is_stable_across_processes_shape(self):
        # Same config dict -> same hash, independent of dict insertion order.
        key1, cfg = _key()
        shuffled = dict(reversed(list(cfg.items())))
        assert config_hash(shuffled) == key1

    def test_any_changed_field_changes_hash(self):
        key0, cfg = _key()
        for field, value in [
            ("seed", 1),
            ("horizon", 31.0),
            ("algorithm", "max"),
            ("name", "other"),
        ]:
            mutated = dict(cfg, **{field: value})
            assert config_hash(mutated) != key0, field

    def test_changed_params_subfield_changes_hash(self):
        key0, cfg = _key()
        mutated = dict(cfg, params=dict(cfg["params"], rho=0.02))
        assert config_hash(mutated) != key0


class TestStore:
    def test_miss_then_hit(self, store):
        key, cfg = _key()
        assert store.get(key) is None
        store.put(key, cfg, {"max_global_skew": 1.5})
        assert store.writes == 1
        entry = store.get(key)
        assert entry is not None
        assert entry["metrics"] == {"max_global_skew": 1.5}
        assert entry["config"] == cfg
        assert key in store

    def test_cache_miss_on_any_changed_field(self, store):
        key, cfg = _key()
        store.put(key, cfg, {"m": 1})
        other = dict(cfg, seed=99)
        assert store.get(config_hash(other)) is None

    def test_corrupted_entry_evicted_not_fatal(self, store):
        key, cfg = _key()
        store.put(key, cfg, {"m": 1})
        path = store.path_for(key)
        path.write_text("{not json", encoding="utf-8")
        assert store.get(key) is None
        assert store.evictions == 1
        assert not path.exists()
        # A fresh put repopulates the slot.
        store.put(key, cfg, {"m": 2})
        assert store.get(key)["metrics"] == {"m": 2}

    def test_wrong_shape_entry_evicted(self, store):
        key, cfg = _key()
        store.put(key, cfg, {"m": 1})
        store.path_for(key).write_text(json.dumps([1, 2, 3]), encoding="utf-8")
        assert store.get(key) is None
        assert store.evictions == 1

    def test_non_dict_metrics_evicted(self, store):
        key, cfg = _key()
        entry = store.put(key, cfg, {"m": 1})
        store.path_for(key).write_text(
            json.dumps(dict(entry, metrics=5)), encoding="utf-8"
        )
        assert store.get(key) is None
        assert store.evictions == 1

    def test_version_mismatch_evicted(self, store):
        key, cfg = _key()
        entry = store.put(key, cfg, {"m": 1})
        stale = dict(entry, version=0)
        store.path_for(key).write_text(json.dumps(stale), encoding="utf-8")
        assert store.get(key) is None
        assert store.evictions == 1

    def test_keys_entries_and_find(self, store):
        pairs = [_key(seed) for seed in range(3)]
        for key, cfg in pairs:
            store.put(key, cfg, {"seed": cfg["seed"]})
        assert len(store) == 3
        assert store.keys() == sorted(k for k, _ in pairs)
        assert {e["hash"] for e in store.entries()} == {k for k, _ in pairs}
        key0 = pairs[0][0]
        assert store.find(key0[:8]) == [key0]
        assert store.find("") == store.keys()

    def test_empty_store_enumerates_empty(self, store):
        assert store.keys() == []
        assert list(store.entries()) == []
        assert len(store) == 0


class TestPruneVersionedStore:
    def _seed(self, root, version):
        d = root / f"v{version}"
        (d / "ab").mkdir(parents=True)
        (d / "ab" / "entry.json").write_text("{}")
        return d

    def test_keep_current_package_version(self, tmp_path):
        """Pruning with the *current* version keeps exactly its directory.

        This is the CLI's default invocation (``repro prune`` passes
        ``repro.__version__``): every stale version directory goes, the
        live cache survives untouched, and the report says so.
        """
        import repro
        from repro.sweep import prune_versioned_store

        current = repro.__version__
        live = self._seed(tmp_path, current)
        self._seed(tmp_path, "0.9.0")
        self._seed(tmp_path, "1.0.0rc1")
        report = prune_versioned_store(tmp_path, keep_version=current)
        assert sorted(report.removed) == ["v0.9.0", "v1.0.0rc1"]
        assert report.kept == [f"v{current}"]
        assert live.is_dir()
        assert (live / "ab" / "entry.json").exists()
        assert report.entries_removed == 2
        assert f"kept v{current}" in report.summary()

    def test_keep_current_version_dry_run_deletes_nothing(self, tmp_path):
        import repro
        from repro.sweep import prune_versioned_store

        current = repro.__version__
        self._seed(tmp_path, current)
        stale = self._seed(tmp_path, "0.1.0")
        report = prune_versioned_store(
            tmp_path, keep_version=current, dry_run=True
        )
        assert report.removed == ["v0.1.0"]
        assert stale.is_dir()  # dry run: reported, not deleted
