"""Hypothesis-randomized serial vs process-pool sweep parity.

The fixed smoke config (``tests/test_sweep_smoke.py``) checks one sweep;
this generates :class:`~repro.sweep.spec.SweepSpec` draws from the shared
strategy library and requires the two backends to produce *bit-identical*
metrics on every one.  Pool startup makes each example expensive, so the
test carries the ``slow`` marker: excluded from the default local run,
exercised in CI's full suite.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro.sweep import SweepEngine
from repro.testing.strategies import sweep_specs


@pytest.mark.slow
@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(spec=sweep_specs())
def test_generated_sweeps_are_bit_identical_across_backends(spec):
    serial = SweepEngine(processes=None).run(spec)
    pooled = SweepEngine(processes=2).run(spec)
    assert len(serial) == len(pooled) == len(spec)
    for s_row, p_row in zip(serial.rows, pooled.rows):
        assert s_row.key == p_row.key
        assert s_row.metrics == p_row.metrics
