"""Tests for BFunction and the closed-form skew bounds of Sections 4 & 6."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import SystemParams
from repro.core import skew_bounds as sb
from repro.core.bfunction import BFunction


class TestBFunction:
    def test_matches_params(self, params8):
        b = BFunction.from_params(params8)
        for age in (0.0, 1.0, 10.0, 100.0, 1e5):
            assert b(age) == pytest.approx(params8.b_function(age))

    def test_vectorised_matches_scalar(self, params8):
        b = BFunction.from_params(params8)
        ages = np.linspace(0, 2 * b.settle_age, 50)
        vec = b.evaluate(ages)
        for a, v in zip(ages, vec):
            assert v == pytest.approx(b(float(a)))

    def test_settle_age(self, params8):
        b = BFunction.from_params(params8)
        assert b(b.settle_age) == pytest.approx(b.b0)
        assert b(b.settle_age * 0.99) > b.b0

    def test_inverse_on_decay_branch(self, params8):
        b = BFunction.from_params(params8)
        mid = (b.intercept + b.b0) / 2.0
        assert b(b.age_at(mid)) == pytest.approx(mid)

    def test_inverse_out_of_range(self, params8):
        b = BFunction.from_params(params8)
        with pytest.raises(ValueError):
            b.age_at(b.b0 / 2)

    def test_negative_age_rejected(self, params8):
        b = BFunction.from_params(params8)
        with pytest.raises(ValueError):
            b(-1.0)

    def test_invalid_coefficients(self):
        with pytest.raises(ValueError):
            BFunction(0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            BFunction(2.0, 1.0, 1.0)  # intercept below floor
        with pytest.raises(ValueError):
            BFunction(1.0, 2.0, 0.0)  # zero slope


class TestGlobalSkewBound:
    def test_theorem_6_9_value(self, params8):
        g = sb.global_skew_bound(params8)
        expected = ((1 + params8.rho) * params8.max_delay
                    + 2 * params8.rho * params8.discovery_bound) * 7
        assert g == pytest.approx(expected)

    def test_override_n(self, params8):
        assert sb.global_skew_bound(params8, n=15) == pytest.approx(
            2.0 * sb.global_skew_bound(params8)
        )

    def test_max_propagation_equals_global(self, params8):
        assert sb.max_propagation_bound(params8) == sb.global_skew_bound(params8)


class TestLocalSkewBounds:
    def test_new_edge_bound_exceeds_global_skew(self, params16):
        # Cor 6.13 at age 0: bound > G(n), so fresh edges are trivially safe.
        assert sb.dynamic_local_skew(params16, 0.0) > sb.global_skew_bound(params16)

    def test_envelope_non_increasing(self, params16):
        ages = np.linspace(0.0, 3 * sb.stabilization_time(params16), 200)
        vals = [sb.dynamic_local_skew(params16, float(a)) for a in ages]
        assert all(b <= a + 1e-12 for a, b in zip(vals, vals[1:]))

    def test_envelope_converges_to_stable(self, params16):
        t_stab = sb.stabilization_time(params16)
        stable = sb.stable_local_skew(params16)
        assert sb.dynamic_local_skew(params16, t_stab) == pytest.approx(stable)
        assert sb.dynamic_local_skew(params16, 10 * t_stab) == pytest.approx(stable)

    def test_stable_formula(self, params16):
        assert sb.stable_local_skew(params16) == pytest.approx(
            params16.b0 + 2 * params16.rho * params16.w_window
        )

    def test_negative_age_rejected(self, params16):
        with pytest.raises(ValueError):
            sb.dynamic_local_skew(params16, -1.0)

    def test_tracked_bound_weaker_than_envelope_tail(self, params16):
        # Thm 6.12's per-tracked-edge form agrees with Cor 6.13 up to the
        # Delta T + D discovery slack.
        age = 2 * sb.stabilization_time(params16)
        assert sb.local_skew_bound_tracked(params16, age) == pytest.approx(
            sb.stable_local_skew(params16)
        )

    def test_blocking_window(self, params16):
        assert sb.blocking_window(params16) == pytest.approx(params16.w_window)


class TestTradeoff:
    def test_adaptation_time_inverse_in_b0(self, params16):
        t1 = sb.adaptation_time(params16)
        t2 = sb.adaptation_time(params16.with_b0(2 * params16.b0))
        assert t2 == pytest.approx(t1 / 2)

    def test_adaptation_time_linear_in_n(self, params16):
        t1 = sb.adaptation_time(params16)
        t2 = sb.adaptation_time(params16.with_n(31))
        assert t2 == pytest.approx(2.0 * t1)

    def test_tradeoff_b0_clamped_to_floor(self, params16):
        b0 = sb.tradeoff_b0(params16, scale=1e-6)
        assert b0 > 2 * (1 + params16.rho) * params16.tau

    def test_stabilization_dominated_by_adaptation(self, params16):
        # For growing n the Theta(n/B0) term dominates stabilization time.
        small = sb.stabilization_time(params16)
        big = sb.stabilization_time(params16.with_n(16 * 16))
        assert big > 8 * small


class TestLowerBounds:
    def test_masking_floor(self, params8):
        assert sb.masking_skew_floor(params8, 8) == pytest.approx(
            0.25 * params8.max_delay * 8
        )
        with pytest.raises(ValueError):
            sb.masking_skew_floor(params8, -1)

    def test_masking_min_time(self, params8):
        t = sb.masking_min_time(params8, 4)
        assert t == pytest.approx(params8.max_delay * 4 * (1 + 1 / params8.rho))

    def test_lb_reduction_time_scales_linearly_in_n(self):
        p1 = SystemParams.for_network(100, b0=60.0)
        p2 = p1.with_n(200)
        r = sb.lb_reduction_time(p2, stable_skew=50.0) / sb.lb_reduction_time(
            p1, stable_skew=50.0
        )
        assert r == pytest.approx(2.0)

    def test_lb_retention_proportional_to_initial_skew(self, params16):
        assert sb.lb_skew_retention(params16, 20.0) == pytest.approx(
            2.0 * sb.lb_skew_retention(params16, 10.0)
        )

    def test_lb_zeta_constant_in_n(self, params16):
        # zeta = n T / (32 G(n)) is ~constant because G is linear in n.
        z1 = sb.lb_skew_retention(params16, 1.0)
        z2 = sb.lb_skew_retention(params16.with_n(160), 1.0)
        assert z2 == pytest.approx(z1, rel=0.12)  # (n-1) vs n wobble

    def test_lb_min_initial_skew_positive(self, params16):
        assert sb.lb_min_initial_skew(params16) > 0


@given(st.floats(min_value=0.0, max_value=1e4))
def test_property_envelope_at_least_stable(age):
    p = SystemParams.for_network(12)
    assert sb.dynamic_local_skew(p, age) >= sb.stable_local_skew(p) - 1e-9


@given(
    st.integers(min_value=2, max_value=500),
    st.floats(min_value=0.001, max_value=0.4),
)
def test_property_global_bound_positive_and_linear(n, rho):
    p = SystemParams.for_network(n, rho=rho)
    g = sb.global_skew_bound(p)
    assert g >= 0.0
    assert g == pytest.approx(p.global_skew_rate * (n - 1))
