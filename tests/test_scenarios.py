"""Integration tests for the Section 4 scenario experiments."""

from __future__ import annotations

import pytest

from repro import SystemParams
from repro.core import skew_bounds as sb
from repro.lowerbound import run_figure1_experiment, run_masking_experiment


class TestMaskingExperiment:
    def test_unmasked_chain_meets_floor(self):
        params = SystemParams.for_network(8, rho=0.05)
        res = run_masking_experiment(params)
        assert res.flexible_distance == 7
        assert res.floor == pytest.approx(0.25 * params.max_delay * 7)
        assert res.floor_met
        # Beta hides the full T*d hardware skew from the algorithm.
        assert res.skew == pytest.approx(params.max_delay * 7, rel=0.15)

    def test_indistinguishability_is_exact(self):
        """The real implementation cannot distinguish alpha from beta:
        L^beta_w(t) == L^alpha_w(H^beta_w(t)) to machine precision."""
        params = SystemParams.for_network(6, rho=0.05)
        res = run_masking_experiment(params, indist_samples=6)
        assert res.indistinguishability_error is not None
        assert res.indistinguishability_error < 1e-9

    def test_constrained_prefix_reduces_skew(self):
        params = SystemParams.for_network(8, rho=0.05)
        free = run_masking_experiment(params, check_indistinguishability=False)
        masked = run_masking_experiment(
            params, constrained_prefix=4, check_indistinguishability=False
        )
        assert masked.flexible_distance == free.flexible_distance - 4
        assert masked.skew < free.skew

    def test_works_for_baseline_algorithms(self):
        """The bound is algorithm-independent: max-sync cannot beat it
        either (shown here for the implementation we have)."""
        params = SystemParams.for_network(6, rho=0.05)
        res = run_masking_experiment(
            params, algorithm="max", check_indistinguishability=False
        )
        assert res.floor_met

    def test_measure_time_validation(self):
        params = SystemParams.for_network(6, rho=0.05)
        with pytest.raises(ValueError):
            run_masking_experiment(params, measure_time=1.0)

    def test_prefix_validation(self):
        params = SystemParams.for_network(6, rho=0.05)
        with pytest.raises(ValueError):
            run_masking_experiment(params, constrained_prefix=10)


class TestFigure1Experiment:
    @pytest.fixture(scope="class")
    def result(self):
        params = SystemParams.for_network(16, rho=0.05)
        return run_figure1_experiment(params, k=1, sample_interval=2.0)

    def test_panel_a_skew_linear_in_flexible_distance(self, result):
        """Chain A carries Omega(n) skew between u and v at T2."""
        # dist(u, v) = |A-edges| - 2k; skew ~ T * dist.
        expected = (16 // 2) - 2 * result.k
        assert result.skew_uv_t2 == pytest.approx(float(expected), rel=0.2)
        assert result.skew_w0_wn_t2 == pytest.approx(result.skew_uv_t2, rel=0.2)

    def test_panel_b_initial_skews_in_lemma_window(self, result):
        """Every injected edge's initial skew lies in [c - d, c]."""
        assert result.new_edges, "no edges were injected"
        c, d = result.requested_initial_skew, result.gap_slack
        for e in result.new_edges:
            assert c - d - 1e-6 <= e.initial_skew <= c + 1e-6

    def test_panel_d_corner_clocks_ordered(self, result):
        """w0 == u layer is behind; v == wn layer is ahead (beta drift)."""
        t1 = result.corner_clocks_t1
        assert t1["w0"] == pytest.approx(t1["u"], abs=1.5)
        assert t1["wn"] == pytest.approx(t1["v"], abs=1.5)
        assert t1["v"] > t1["u"]

    def test_new_edges_eventually_settle(self, result):
        """All new edges reach the stable bound within the horizon, no
        faster than physics allows and no slower than the DCSA guarantee."""
        for e in result.new_edges:
            assert e.final_skew <= result.stable_skew + 1e-6
            assert e.reduction_time is not None
            assert e.reduction_time <= result.theory_reduction_ceiling + 1e-6

    def test_validation(self):
        params = SystemParams.for_network(16, rho=0.05)
        with pytest.raises(ValueError):
            run_figure1_experiment(params, k=100)
        with pytest.raises(ValueError):
            run_figure1_experiment(params, settle_factor=0.5)
        small = SystemParams.for_network(6, rho=0.05)
        with pytest.raises(ValueError):
            run_figure1_experiment(small)
