"""Tests for the telemetry subsystem (registry, sampler, schema, top).

The load-bearing guarantees:

* **Neutrality** — attaching the full telemetry stack (ambient registry,
  instrumented kernel/transport/oracle, background sampler, flight
  recorder) leaves every deterministic run metric bit-identical.  The
  sampler is a neutral observer like the streaming oracle: it must never
  schedule events or draw from run RNG streams.
* **Schema** — every frame the sampler emits validates against the
  versioned frame schema (`repro.telemetry.schema`), so `repro top` and
  external tooling can trust the JSONL stream.
* **Overhead** — full instrumentation plus a fast sampler stays within a
  few percent of the uninstrumented wall-clock on the acceptance-scale
  workload (slow-marked; exercised in CI).
"""

from __future__ import annotations

import json
import math
import time

import pytest

from repro.harness import configs, run_experiment
from repro.telemetry import (
    FlightRecorder,
    FrameError,
    Histogram,
    MetricsRegistry,
    TelemetrySampler,
    build_frame,
    get_registry,
    read_frames,
    render_snapshot,
    validate_frame,
)
from repro.telemetry.top import follow_frames


@pytest.fixture
def registry() -> MetricsRegistry:
    """A fresh, enabled, non-global registry."""
    reg = MetricsRegistry()
    reg.enable()
    return reg


@pytest.fixture
def ambient():
    """The process-wide registry, enabled for one test and always torn down."""
    reg = get_registry()
    reg.reset()
    reg.enable()
    try:
        yield reg
    finally:
        reg.disable()
        reg.reset()


# --------------------------------------------------------------------- #
# Registry instruments
# --------------------------------------------------------------------- #


class TestRegistry:
    def test_counter_and_gauge(self, registry):
        c = registry.counter("x.count")
        c.inc()
        c.inc(2.5)
        g = registry.gauge("x.level")
        g.set(7.0)
        snap = registry.snapshot()
        assert snap["counters"]["x.count"] == 3.5
        assert snap["gauges"]["x.level"] == 7.0

    def test_instruments_are_shared_by_name(self, registry):
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_histogram_bucketing(self):
        h = Histogram("h", bounds=(1.0, 10.0, 100.0))
        for v in (0.5, 1.0, 5.0, 50.0, 5000.0):
            h.observe(v)
        # <=1 | <=10 | <=100 | overflow
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert sum(h.counts) == h.count
        assert h.max == 5000.0
        assert h.mean == pytest.approx(sum((0.5, 1.0, 5.0, 50.0, 5000.0)) / 5)

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", bounds=())

    def test_timer_feeds_histogram(self, registry):
        with registry.timer("span.s"):
            pass
        h = registry.histogram("span.s")
        assert h.count == 1
        assert h.max >= 0.0

    def test_polled_readbacks_and_overwrite(self, registry):
        registry.counter_fn("poll.c", lambda: 41)
        registry.counter_fn("poll.c", lambda: 42)  # re-wire overwrites
        registry.gauge_fn("poll.g", lambda: 1.5)
        snap = registry.snapshot()
        assert snap["counters"]["poll.c"] == 42
        assert snap["gauges"]["poll.g"] == 1.5

    def test_snapshot_sanitizes_and_survives_raises(self, registry):
        registry.gauge("bad.inf").set(math.inf)
        registry.gauge_fn("bad.nan", lambda: math.nan)
        registry.gauge_fn("bad.str", lambda: "oops")
        registry.counter_fn("bad.raise", lambda: 1 / 0)
        snap = registry.snapshot()
        assert snap["gauges"]["bad.inf"] is None
        assert snap["gauges"]["bad.nan"] is None
        assert snap["gauges"]["bad.str"] is None
        assert "bad.raise" not in snap["counters"]
        # The sanitized snapshot must be a valid frame payload.
        validate_frame(
            {
                "v": 1,
                "seq": 0,
                "t_wall": 0.0,
                "source": "t",
                **snap,
            }
        )

    def test_reset_drops_everything(self, registry):
        registry.counter("a").inc()
        registry.counter_fn("b", lambda: 1)
        registry.reset()
        snap = registry.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}


# --------------------------------------------------------------------- #
# Frame schema
# --------------------------------------------------------------------- #


def _valid_frame() -> dict:
    return {
        "v": 1,
        "seq": 3,
        "t_wall": 1.25,
        "source": "run:test",
        "counters": {"kernel.events_dispatched": 10},
        "gauges": {"kernel.queue_depth": 4, "oracle.worst_margin.skew": None},
        "histograms": {
            "proc.gc_pause_s": {
                "bounds": [0.001, 0.01],
                "counts": [2, 1, 0],
                "count": 3,
                "total": 0.004,
                "max": 0.002,
            }
        },
    }


class TestSchema:
    def test_valid_frame_passes(self):
        validate_frame(_valid_frame())

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda f: f.pop("seq"),
            lambda f: f.__setitem__("v", 99),
            lambda f: f.__setitem__("seq", -1),
            lambda f: f.__setitem__("t_wall", -0.5),
            lambda f: f.__setitem__("counters", {"c": -1}),
            lambda f: f.__setitem__("gauges", {"g": "high"}),
            lambda f: f["histograms"]["proc.gc_pause_s"].__setitem__(
                "counts", [1, 1]
            ),
            lambda f: f["histograms"]["proc.gc_pause_s"].__setitem__(
                "bounds", [0.01, 0.001]
            ),
            lambda f: f["histograms"]["proc.gc_pause_s"].__setitem__("count", 99),
        ],
        ids=[
            "missing-seq",
            "wrong-version",
            "negative-seq",
            "negative-t-wall",
            "negative-counter",
            "non-numeric-gauge",
            "counts-length",
            "unsorted-bounds",
            "count-mismatch",
        ],
    )
    def test_invalid_frames_fail(self, mutate):
        frame = _valid_frame()
        mutate(frame)
        with pytest.raises(FrameError):
            validate_frame(frame)


# --------------------------------------------------------------------- #
# Flight recorder + sampler
# --------------------------------------------------------------------- #


class TestFlightRecorder:
    def test_round_trip(self, registry, tmp_path):
        registry.counter("c").inc(5)
        path = str(tmp_path / "m.jsonl")
        with FlightRecorder(path) as rec:
            rec(build_frame(registry, 0, 0.0, "t"))
            rec(build_frame(registry, 1, 0.5, "t"))
            assert rec.frames_written == 2
        frames = read_frames(path)  # validates every frame
        assert [f["seq"] for f in frames] == [0, 1]
        assert frames[-1]["counters"]["c"] == 5
        rec.close()  # idempotent

    def test_follow_frames_buffers_partial_tail(self, tmp_path):
        path = tmp_path / "m.jsonl"
        whole = json.dumps(_valid_frame())
        path.write_text(whole + "\n" + whole[: len(whole) // 2])
        with open(path, "r", encoding="utf-8") as fh:
            assert len(list(follow_frames(fh))) == 1
            # Writer finishes the second line: the partial tail was left
            # buffered at the file position, so it now parses whole.
            with open(path, "a", encoding="utf-8") as wfh:
                wfh.write(whole[len(whole) // 2 :] + "\n")
            assert len(list(follow_frames(fh))) == 1

    def test_follow_frames_restarts_after_truncate_in_place(self, tmp_path):
        path = tmp_path / "m.jsonl"
        frame = _valid_frame()
        frame["counters"] = {"kernel.events_dispatched": 11111111}
        path.write_text(json.dumps(frame) + "\n" + json.dumps(frame) + "\n")
        with open(path, "r", encoding="utf-8") as fh:
            assert len(list(follow_frames(fh))) == 2
            # Rotation: the writer truncates and starts a fresh (shorter)
            # stream.  Our position is now beyond EOF; the tail must
            # restart from offset 0 instead of waiting forever.
            fresh = _valid_frame()
            fresh["seq"] = 0
            with open(path, "w", encoding="utf-8") as wfh:
                wfh.write(json.dumps(fresh) + "\n")
            got = list(follow_frames(fh))
            assert [f["seq"] for f in got] == [0]

    def test_follow_frames_skips_torn_mid_file_frame(self, tmp_path):
        """A rotation race can leave a *complete* line of garbage mid-file.

        Unlike a partial tail (no newline yet -- buffered and retried),
        a torn line that did get its newline will never become valid
        JSON.  The reader must skip it and resume at the next frame
        rather than raise out of the tail loop.
        """
        path = tmp_path / "m.jsonl"
        a, b = _valid_frame(), _valid_frame()
        a["seq"], b["seq"] = 0, 1
        torn = json.dumps(_valid_frame())[: 20] + "}garbage"
        path.write_text(
            json.dumps(a) + "\n" + torn + "\n" + json.dumps(b) + "\n"
        )
        with open(path, "r", encoding="utf-8") as fh:
            got = list(follow_frames(fh))
            assert [f["seq"] for f in got] == [0, 1]
            # The tail position is past the torn region: appends flow.
            with open(path, "a", encoding="utf-8") as wfh:
                wfh.write(json.dumps(_valid_frame()) + "\n")
            assert len(list(follow_frames(fh))) == 1

    def test_follow_frames_truncation_with_buffered_partial_tail(self, tmp_path):
        path = tmp_path / "m.jsonl"
        big = _valid_frame()
        big["source"] = "run:" + "pad" * 100  # longer than the fresh stream
        whole = json.dumps(_valid_frame())
        # A complete frame plus a torn tail the writer never finishes.
        path.write_text(json.dumps(big) + "\n" + whole[: len(whole) // 2])
        with open(path, "r", encoding="utf-8") as fh:
            assert len(list(follow_frames(fh))) == 1  # tail stays buffered
            with open(path, "w", encoding="utf-8") as wfh:
                wfh.write(whole + "\n")
            # File shrank below the buffered position mid-frame: restart.
            got = list(follow_frames(fh))
            assert [f["source"] for f in got] == ["run:test"]
            # And the restarted position keeps tailing appends normally.
            with open(path, "a", encoding="utf-8") as wfh:
                wfh.write(whole + "\n")
            assert len(list(follow_frames(fh))) == 1


class TestSampler:
    def test_emits_first_and_last_frames(self, registry, tmp_path):
        path = str(tmp_path / "m.jsonl")
        rec = FlightRecorder(path)
        sampler = TelemetrySampler(
            registry, interval=0.02, sink=rec, source="t", keep_frames=True
        )
        sampler.start()
        with pytest.raises(RuntimeError):
            sampler.start()
        registry.counter("work").inc(3)
        time.sleep(0.08)
        sampler.stop()
        sampler.stop()  # idempotent
        rec.close()
        frames = read_frames(path)
        assert frames[0]["seq"] == 0
        assert [f["seq"] for f in frames] == list(range(len(frames)))
        assert len(frames) >= 2  # start + at least the stop frame
        assert sampler.first_frame == frames[0]
        assert sampler.last_frame["counters"]["work"] == 3
        assert all(f["source"] == "t" for f in frames)
        assert sampler.frames is not None
        assert len(sampler.frames) == len(frames)

    def test_gc_watcher_uninstalls(self, registry):
        import gc

        sampler = TelemetrySampler(registry, interval=5.0, source="t")
        n0 = len(gc.callbacks)
        sampler.start()
        assert len(gc.callbacks) == n0 + 1
        sampler.stop()
        assert len(gc.callbacks) == n0

    def test_rejects_bad_interval(self, registry):
        with pytest.raises(ValueError):
            TelemetrySampler(registry, interval=0.0)


# --------------------------------------------------------------------- #
# Rendering
# --------------------------------------------------------------------- #


class TestRender:
    def test_snapshot_table_and_derived_lines(self):
        prev = _valid_frame()
        frame = _valid_frame()
        frame["seq"] = 4
        frame["t_wall"] = 2.25
        frame["counters"] = {
            "kernel.events_dispatched": 1000,
            "kernel.record_pushes": 1000,
            "kernel.record_allocations": 100,
            "transport.sent": 500,
            "transport.delivered": 400,
        }
        out = render_snapshot(frame, prev)
        assert "kernel.events_dispatched" in out
        assert "events/sec: 990" in out  # (1000 - 10) / 1s
        assert "event-pool hit rate: 90.00%" in out
        assert "delivery ratio: 80.00%" in out
        assert "oracle.worst_margin.skew" in out  # None gauge renders as "-"


class TestTopCommand:
    """`repro top` against a fixture metrics file (one-shot render)."""

    @staticmethod
    def _write_fixture(path):
        first = _valid_frame()
        first["seq"], first["t_wall"] = 0, 0.0
        first["counters"] = {"kernel.events_dispatched": 10}
        last = _valid_frame()
        last["seq"], last["t_wall"] = 4, 2.0
        last["counters"] = {
            "kernel.events_dispatched": 1010,
            "transport.sent": 200,
            "transport.delivered": 150,
        }
        path.write_text(
            json.dumps(first) + "\n" + json.dumps(last) + "\n",
            encoding="utf-8",
        )

    def test_one_shot_renders_final_frame_with_rates(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "m.jsonl"
        self._write_fixture(path)
        assert main(["top", str(path)]) == 0
        out = capsys.readouterr().out
        assert "kernel.events_dispatched" in out
        assert "1,010" in out  # final counter value, grouped
        assert "events/sec: 500" in out  # (1010 - 10) / 2s
        assert "delivery ratio: 75.00%" in out
        assert "kernel.queue_depth" in out  # gauges table

    def test_empty_and_invalid_files_fail_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        empty = tmp_path / "empty.jsonl"
        empty.write_text("", encoding="utf-8")
        assert main(["top", str(empty)]) == 1
        assert "no frames" in capsys.readouterr().err
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"not": "a frame"}\n', encoding="utf-8")
        assert main(["top", str(bad)]) == 2
        assert "error" in capsys.readouterr().err


# --------------------------------------------------------------------- #
# Neutrality: telemetry must not perturb the physics
# --------------------------------------------------------------------- #

#: The golden workloads (mirrors tests/test_golden_values.py).
WORKLOADS = [
    ("static_path", lambda: configs.static_path(8, horizon=60.0, seed=3)),
    ("backbone_churn", lambda: configs.backbone_churn(8, horizon=60.0, seed=5)),
    ("adversarial_drift", lambda: configs.adversarial_drift(8, horizon=60.0, seed=7)),
]


class TestNeutrality:
    @pytest.mark.parametrize("name,make", WORKLOADS, ids=[w[0] for w in WORKLOADS])
    def test_metrics_identical_with_telemetry_on(self, name, make, tmp_path):
        baseline = run_experiment(make())

        reg = get_registry()
        reg.reset()
        reg.enable()
        try:
            rec = FlightRecorder(str(tmp_path / "m.jsonl"))
            sampler = TelemetrySampler(reg, interval=0.01, sink=rec, source=name)
            sampler.start()
            observed = run_experiment(make())
            sampler.stop()
            rec.close()
        finally:
            reg.disable()
            reg.reset()

        # Bit-identical, not approx: the sampler is a pure observer.
        assert observed.max_global_skew == baseline.max_global_skew
        assert observed.max_local_skew == baseline.max_local_skew
        assert observed.total_jumps() == baseline.total_jumps()
        assert observed.events_dispatched == baseline.events_dispatched

        # And the instrumentation really was live: the final frame agrees
        # with the run's own event count.
        last = sampler.last_frame
        assert last is not None
        assert (
            last["counters"]["kernel.events_dispatched"]
            == observed.events_dispatched
        )
        for frame in read_frames(str(tmp_path / "m.jsonl")):
            validate_frame(frame)


@pytest.mark.slow
def test_sampler_overhead_smoke(tmp_path):
    """Full instrumentation + fast sampler costs < 5% on huge_ring n=512.

    Min-of-three wall-clock per arm (interleaved) to shrug off scheduler
    noise; the absolute slack term covers sub-second jitter on loaded CI
    runners without masking a real per-event regression.
    """
    make = lambda: configs.huge_ring(512, horizon=30.0, seed=1)

    def timed_run() -> float:
        t0 = time.perf_counter()
        run_experiment(make())
        return time.perf_counter() - t0

    off: list[float] = []
    on: list[float] = []
    reg = get_registry()
    for _ in range(3):
        reg.disable()
        reg.reset()
        off.append(timed_run())
        reg.reset()
        reg.enable()
        sampler = TelemetrySampler(
            reg,
            interval=0.05,
            sink=FlightRecorder(str(tmp_path / "m.jsonl")),
            source="huge_ring",
        )
        sampler.start()
        try:
            on.append(timed_run())
        finally:
            sampler.stop()
            reg.disable()
            reg.reset()
    assert min(on) <= min(off) * 1.05 + 0.05, (
        f"telemetry overhead too high: on={min(on):.3f}s off={min(off):.3f}s"
    )
