"""Tests for the struct-of-arrays batch dispatch path (repro.core.batch).

The load-bearing guarantee is the **parity contract**: with the batch
kernel enabled, every run metric -- skews, jumps (count *and* float
total), per-node protocol state, message counters, dispatch tallies --
is bit-identical to the scalar kernel on the same config.  The tests
here pin that contract on the batch workloads (where the vectorized
phases actually engage), on a churn workload (where the kernel must
*fall back* per record), and at the unit level for the queue's pop-run
API and the vectorized AdjustClock.
"""

from __future__ import annotations

import pytest

from repro.core.batch import build_node_array_table
from repro.core.dcsa import adjust_clocks_batch
from repro.harness import configs
from repro.harness.runner import Experiment
from repro.sim import simulator as simulator_mod
from repro.sim.events import (
    KIND_DELIVER,
    KIND_DELIVER_BURST,
    KIND_NAMES,
    KIND_TICK_BURST,
    KIND_TIMER,
    N_KINDS,
    POOLABLE,
    PRIORITY_DELIVERY,
    PRIORITY_TIMER,
)
from repro.sim.queue import EventQueue


def _run(cfg, batch, monkeypatch):
    """Build and run ``cfg`` with the batch kernel forced on or off."""
    monkeypatch.setattr(simulator_mod, "BATCH_DEFAULT", batch)
    exp = Experiment(cfg)
    assert exp.sim.batch is batch
    res = exp.run()
    return exp, res


def _fingerprint(exp, res):
    """Every observable a batch/scalar divergence could show up in.

    Floats are captured as ``repr`` so the comparison is bitwise, not
    tolerance-based.
    """
    cores = [exp.nodes[i].core for i in sorted(exp.nodes)]
    return {
        "events": res.events_dispatched,
        "transport": res.transport_stats,
        "jumps": [c.jumps for c in cores],
        "total_jump": [repr(c.total_jump) for c in cores],
        "L": [repr(c._L) for c in cores],
        "Lmax": [repr(c._Lmax) for c in cores],
        "h_last": [repr(c.h_last) for c in cores],
        "messages_sent": [c.messages_sent for c in cores],
        "gamma": [
            sorted(
                (u, repr(row.added_h), repr(row.l_est))
                for u, row in c.gamma._rows.items()
            )
            for c in cores
        ],
        "oracle": (
            None
            if res.oracle_report is None
            else (
                res.oracle_report.ok,
                res.oracle_report.checks,
                res.oracle_report.violation_count,
                repr(res.oracle_report.worst_margin),
            )
        ),
    }


PARITY_WORKLOADS = [
    ("sync_ring", lambda: configs.huge_sync_ring(64, horizon=120.0)),
    ("sync_grid", lambda: configs.huge_sync_grid(8, 8, horizon=60.0)),
    ("churn_ring", lambda: configs.huge_churn_ring(64, horizon=60.0)),
]


class TestParity:
    @pytest.mark.parametrize(
        "name,make", PARITY_WORKLOADS, ids=[w[0] for w in PARITY_WORKLOADS]
    )
    def test_batch_bit_identical_to_scalar(self, name, make, monkeypatch):
        exp_s, res_s = _run(make(), False, monkeypatch)
        exp_b, res_b = _run(make(), True, monkeypatch)
        assert exp_s.sim.batch_dispatches == 0
        assert _fingerprint(exp_b, res_b) == _fingerprint(exp_s, res_s)

    def test_batch_path_actually_engages(self, monkeypatch):
        """The sync workload must hit the vectorized phases, not fall back."""
        exp, _ = _run(configs.huge_sync_ring(64, horizon=30.0), True, monkeypatch)
        assert exp.sim.batch_dispatches > 0
        table = exp.transport._batch_table
        assert table is not None and table is not False

    def test_churn_workload_falls_back_but_agrees(self, monkeypatch):
        """Churn defeats the bulk-send shortcut; record-order replay holds."""
        exp, _ = _run(configs.huge_churn_ring(64, horizon=60.0), True, monkeypatch)
        assert exp.transport.edge_flips > 0


class TestGating:
    def test_table_builds_for_sync_workload(self, monkeypatch):
        monkeypatch.setattr(simulator_mod, "BATCH_DEFAULT", True)
        exp = Experiment(configs.huge_sync_ring(16, horizon=5.0))
        table = build_node_array_table(exp.sim, exp.transport)
        assert table is not None
        assert len(table.drivers) == 16
        assert table.send_delay is not None  # constant positive delay

    def test_table_refuses_non_dcsa_cores(self, monkeypatch):
        monkeypatch.setattr(simulator_mod, "BATCH_DEFAULT", True)
        exp = Experiment(
            configs.huge_sync_ring(16, horizon=5.0, algorithm="max")
        )
        assert build_node_array_table(exp.sim, exp.transport) is None

    def test_maxsync_runs_unchanged_under_batch_default(self, monkeypatch):
        cfg = lambda: configs.huge_sync_ring(16, horizon=20.0, algorithm="max")
        _, res_s = _run(cfg(), False, monkeypatch)
        _, res_b = _run(cfg(), True, monkeypatch)
        assert res_b.events_dispatched == res_s.events_dispatched
        assert res_b.transport_stats == res_s.transport_stats


class TestEventKinds:
    def test_kind_tables_sized_consistently(self):
        assert len(KIND_NAMES) == N_KINDS
        assert len(POOLABLE) == N_KINDS
        assert KIND_NAMES[KIND_DELIVER_BURST] == "deliver_burst"
        assert KIND_NAMES[KIND_TICK_BURST] == "tick_burst"
        assert POOLABLE[KIND_DELIVER_BURST] and POOLABLE[KIND_TICK_BURST]

    def test_burst_records_expand_into_kind_counts(self, monkeypatch):
        """Dispatch tallies count constituents, never aggregate records."""
        monkeypatch.setattr(simulator_mod, "BATCH_DEFAULT", False)
        exp_s = Experiment(configs.huge_sync_ring(32, horizon=30.0))
        exp_s.sim.kind_counts = [0] * N_KINDS
        res_s = exp_s.run()
        monkeypatch.setattr(simulator_mod, "BATCH_DEFAULT", True)
        exp_b = Experiment(configs.huge_sync_ring(32, horizon=30.0))
        exp_b.sim.kind_counts = [0] * N_KINDS
        res_b = exp_b.run()
        assert res_b.events_dispatched == res_s.events_dispatched
        counts_s = exp_s.sim.kind_counts
        counts_b = exp_b.sim.kind_counts
        # Aggregate kinds net out to zero: each dispatch re-books its
        # cardinality as the constituent kind.
        assert counts_b[KIND_DELIVER_BURST] == 0
        assert counts_b[KIND_TICK_BURST] == 0
        assert counts_b[KIND_DELIVER] == counts_s[KIND_DELIVER]
        assert counts_b[KIND_TIMER] == counts_s[KIND_TIMER]
        assert counts_b == counts_s


class TestPopRun:
    def test_collects_contiguous_same_key_run(self):
        q = EventQueue()
        a = q.push_typed(1.0, PRIORITY_DELIVERY, KIND_DELIVER, 0, 1, None, None)
        b = q.push_typed(1.0, PRIORITY_DELIVERY, KIND_DELIVER, 1, 2, None, None)
        c = q.push_typed(1.0, PRIORITY_TIMER, KIND_TIMER, "n", "k")
        first = q.pop_until(2.0)
        assert first is a
        buf: list = []
        assert q.pop_run(first, buf) == 2
        assert buf == [a, b]
        assert q.pop_until(2.0) is c  # the timer was left alone

    def test_singleton_run_returns_zero_and_leaves_buffer(self):
        q = EventQueue()
        a = q.push_typed(1.0, PRIORITY_DELIVERY, KIND_DELIVER, 0, 1, None, None)
        q.push_typed(2.0, PRIORITY_DELIVERY, KIND_DELIVER, 1, 2, None, None)
        first = q.pop_until(3.0)
        buf: list = []
        assert q.pop_run(first, buf) == 0
        assert buf == []
        assert first is a

    def test_kind_boundary_ends_run_at_equal_key(self):
        """Same (time, priority) but different kind: never mixed in a run."""
        q = EventQueue()
        a = q.push_typed(1.0, PRIORITY_DELIVERY, KIND_DELIVER, 0, 1, None, None)
        b = q.push_typed(
            1.0, PRIORITY_DELIVERY, KIND_DELIVER_BURST, [0], [1], [None], 0.0
        )
        first = q.pop_until(2.0)
        assert first is a
        buf: list = []
        assert q.pop_run(first, buf) == 0
        assert q.pop_until(2.0) is b

    def test_cancelled_records_inside_run_dropped(self):
        q = EventQueue()
        a = q.push_typed(1.0, PRIORITY_DELIVERY, KIND_DELIVER, 0, 1, None, None)
        b = q.push_typed(1.0, PRIORITY_DELIVERY, KIND_DELIVER, 1, 2, None, None)
        c = q.push_typed(1.0, PRIORITY_DELIVERY, KIND_DELIVER, 2, 3, None, None)
        q.cancel(b)
        first = q.pop_until(2.0)
        buf: list = []
        assert q.pop_run(first, buf) == 2
        assert buf == [a, c]


class TestAdjustClocksBatch:
    def _cores(self, n, monkeypatch):
        monkeypatch.setattr(simulator_mod, "BATCH_DEFAULT", True)
        exp = Experiment(configs.huge_sync_ring(n, horizon=10.0))
        exp.run()
        return [exp.nodes[i].core for i in sorted(exp.nodes)]

    def _snap(self, cores):
        return [
            (repr(c._L), repr(c._Lmax), c.jumps, repr(c.total_jump))
            for c in cores
        ]

    def test_vector_path_matches_scalar_path(self, monkeypatch):
        """Above the size cutoff the numpy reduction must equal the loop.

        Two identical end-of-run populations (same config, same seed) are
        adjusted once through each code path; the resulting ``L`` / jump
        stats must agree bitwise.
        """
        a = self._cores(64, monkeypatch)  # >= _VECTOR_MIN: numpy path
        b = self._cores(64, monkeypatch)
        adjust_clocks_batch(a)
        for core in b:  # reference: one scalar adjust each
            adjust_clocks_batch([core])
        assert self._snap(a) == self._snap(b)

    def test_empty_gamma_population_uses_scalar_loop(self, monkeypatch):
        """Pre-discovery cores (no rows) must not break the vector path."""
        cores = self._cores(64, monkeypatch)
        cores[0].gamma._rows.clear()
        before = self._snap([cores[0]])
        adjust_clocks_batch(cores)  # empty Gamma: min over nothing = no-op
        assert self._snap([cores[0]])[0][:2] == before[0][:2]


@pytest.mark.slow
def test_huge_sync_ring_100k_smoke(monkeypatch):
    """The n=100k target scale: runs, engages the batch path, stays sane."""
    monkeypatch.setattr(simulator_mod, "BATCH_DEFAULT", True)
    exp = Experiment(
        configs.huge_sync_ring(100_000, horizon=3.0, sample_interval=1.0)
    )
    res = exp.run()
    assert exp.sim.batch_dispatches > 0
    assert res.events_dispatched > 1_000_000
    assert res.oracle_report is not None and res.oracle_report.ok
