"""Tests for the ``python -m repro`` CLI (run in-process via cli.main)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.sweep import ResultStore


@pytest.fixture
def store_dir(tmp_path):
    return str(tmp_path / "store")


def run_cli(capsys, *argv: str) -> tuple[int, str, str]:
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


SWEEP_ARGS = (
    "sweep",
    "static_ring",
    "--set",
    "horizon=15",
    "--grid",
    "n=5,6",
    "--seeds",
    "2",
    "--quiet",
)


class TestSweep:
    def test_sweep_runs_and_prints_table(self, capsys, store_dir):
        code, out, _ = run_cli(capsys, *SWEEP_ARGS, "--store", store_dir)
        assert code == 0
        assert "4 configs: 4 executed, 0 cached" in out
        assert "max_global_skew" in out
        assert len(ResultStore(store_dir)) == 4

    def test_rerun_is_fully_cached(self, capsys, store_dir):
        run_cli(capsys, *SWEEP_ARGS, "--store", store_dir)
        code, out, _ = run_cli(capsys, *SWEEP_ARGS, "--store", store_dir)
        assert code == 0
        assert "0 executed, 4 cached" in out

    def test_parallel_matches_serial_output_rows(self, capsys, store_dir, tmp_path):
        _, out_serial, _ = run_cli(capsys, *SWEEP_ARGS, "--store", store_dir)
        _, out_par, _ = run_cli(
            capsys, *SWEEP_ARGS, "--store", str(tmp_path / "other"), "--processes", "2"
        )
        table = lambda text: [l for l in text.splitlines() if l.startswith("static_ring")]
        assert table(out_serial) == table(out_par)

    def test_csv_export(self, capsys, store_dir, tmp_path):
        csv_path = tmp_path / "rows.csv"
        code, _, _ = run_cli(
            capsys,
            *SWEEP_ARGS,
            "--store",
            store_dir,
            "--csv",
            str(csv_path),
            "--columns",
            "seed",
            "max_global_skew",
        )
        assert code == 0
        lines = csv_path.read_text().strip().splitlines()
        assert lines[0] == "seed,max_global_skew"
        assert len(lines) == 5

    def test_unknown_workload_is_an_error(self, capsys, store_dir):
        code, _, err = run_cli(capsys, "sweep", "nope", "--store", store_dir)
        assert code == 2
        assert "unknown workload" in err

    def test_zip_axis(self, capsys, store_dir):
        code, out, _ = run_cli(
            capsys,
            "sweep",
            "static_ring",
            "--set",
            "horizon=15",
            "--zip",
            "n=5,6",
            "seed=0,1",
            "--quiet",
            "--store",
            store_dir,
        )
        assert code == 0
        assert "2 configs: 2 executed" in out


class TestSweepJson:
    def test_json_summary_replaces_table(self, capsys, store_dir):
        code, out, _ = run_cli(capsys, *SWEEP_ARGS, "--store", store_dir, "--json")
        assert code == 0
        summary = json.loads(out)
        assert summary["configs"] == 4
        assert summary["executed"] == 4 and summary["cached"] == 0
        assert len(summary["rows"]) == 4
        assert "max_global_skew" in summary["rows"][0]

    def test_json_reports_cache_hits_machine_readably(self, capsys, store_dir):
        run_cli(capsys, *SWEEP_ARGS, "--store", store_dir)
        code, out, _ = run_cli(capsys, *SWEEP_ARGS, "--store", store_dir, "--json")
        assert code == 0
        summary = json.loads(out)
        assert summary["executed"] == 0 and summary["cached"] == 4

    def test_json_still_writes_csv_file(self, capsys, store_dir, tmp_path):
        csv_path = tmp_path / "rows.csv"
        code, out, _ = run_cli(
            capsys, *SWEEP_ARGS, "--store", store_dir, "--json", "--csv", str(csv_path)
        )
        assert code == 0
        json.loads(out)  # stdout stays pure JSON
        assert len(csv_path.read_text().strip().splitlines()) == 5

    def test_json_and_csv_stdout_conflict(self, capsys, store_dir):
        code, _, err = run_cli(
            capsys, *SWEEP_ARGS, "--store", store_dir, "--json", "--csv", "-"
        )
        assert code == 2
        assert "stdout" in err


class TestCheck:
    CHECK_ARGS = ("check", "static_path", "--set", "n=6", "horizon=20")

    def test_conformant_workload_exits_zero(self, capsys):
        code, out, _ = run_cli(capsys, *self.CHECK_ARGS)
        assert code == 0
        assert "conformance OK" in out

    def test_broken_bound_exits_nonzero_with_structured_output(self, capsys):
        code, out, _ = run_cli(capsys, *self.CHECK_ARGS, "--bound-scale", "0.01")
        assert code == 1
        assert "conformance VIOLATED" in out
        assert "observed" in out and "bound" in out

    def test_json_verdicts(self, capsys):
        code, out, _ = run_cli(
            capsys, *self.CHECK_ARGS, "--bound-scale", "0.01", "--json"
        )
        assert code == 1
        verdict = json.loads(out)
        assert verdict["ok"] is False
        (run,) = verdict["runs"]
        assert run["violations"] > 0
        record = run["violation_records"][0]
        assert {"monitor", "time", "nodes", "bound", "observed"} <= set(record)

    def test_monitor_subset(self, capsys):
        code, out, _ = run_cli(
            capsys, *self.CHECK_ARGS, "--monitors", "global_skew", "--json"
        )
        assert code == 0
        (run,) = json.loads(out)["runs"]
        assert run["ok"] is True and run["checks"] > 0

    def test_fuzz_checks_generated_workloads(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "check",
            "static_ring",
            "--set",
            "n=5",
            "horizon=10",
            "--fuzz",
            "2",
            "--json",
        )
        assert code == 0
        verdict = json.loads(out)
        assert len(verdict["runs"]) == 3
        assert all(r["ok"] for r in verdict["runs"])

    def test_unknown_workload_exits_two(self, capsys):
        code, _, err = run_cli(capsys, "check", "nope")
        assert code == 2
        assert "unknown workload" in err

    def test_bad_set_value_exits_two(self, capsys):
        code, _, err = run_cli(capsys, "check", "static_path", "--set", "bogus_kw=1")
        assert code == 2
        assert "error" in err


class TestLsShow:
    def test_ls_empty(self, capsys, store_dir):
        code, out, _ = run_cli(capsys, "ls", "--store", store_dir)
        assert code == 0
        assert "empty" in out

    def test_ls_lists_entries(self, capsys, store_dir):
        run_cli(capsys, *SWEEP_ARGS, "--store", store_dir)
        code, out, _ = run_cli(capsys, "ls", "--store", store_dir)
        assert code == 0
        assert "4 entries" in out

    def test_ls_json_empty_and_populated(self, capsys, store_dir):
        code, out, _ = run_cli(capsys, "ls", "--store", store_dir, "--json")
        assert code == 0
        assert json.loads(out)["entries"] == []
        run_cli(capsys, *SWEEP_ARGS, "--store", store_dir)
        code, out, _ = run_cli(capsys, "ls", "--store", store_dir, "--json")
        assert code == 0
        listing = json.loads(out)
        assert len(listing["entries"]) == 4
        assert {"hash", "name", "seed", "max_global_skew"} <= set(
            listing["entries"][0]
        )

    def test_show_by_unambiguous_prefix(self, capsys, store_dir):
        run_cli(capsys, *SWEEP_ARGS, "--store", store_dir)
        key = ResultStore(store_dir).keys()[0]
        code, out, _ = run_cli(capsys, "show", key[:16], "--store", store_dir)
        assert code == 0
        entry = json.loads(out)
        assert entry["hash"] == key
        assert "max_global_skew" in entry["metrics"]

    def test_show_missing_prefix_errors(self, capsys, store_dir):
        code, _, err = run_cli(capsys, "show", "ffff", "--store", store_dir)
        assert code == 1
        assert "no entry" in err

    def test_show_ambiguous_prefix_errors(self, capsys, store_dir):
        run_cli(capsys, *SWEEP_ARGS, "--store", store_dir)
        code, _, err = run_cli(capsys, "show", "", "--store", store_dir)
        assert code == 1
        assert "ambiguous" in err


class TestVersion:
    def test_version_flag_prints_package_version(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc_info:
            main(["--version"])
        assert exc_info.value.code == 0
        out = capsys.readouterr().out
        assert out.strip() == f"repro {__version__}"


class TestLive:
    def test_live_help_lists_workloads_and_duration(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["live", "--help"])
        assert exc_info.value.code == 0
        out = capsys.readouterr().out
        assert "--duration" in out
        assert "live_ring" in out

    def test_live_session_reports_oracle_ok_json(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "live",
            "--workload",
            "live_ring",
            "--duration",
            "0.4",
            "--set",
            "sample_interval=0.1",
            "--json",
        )
        assert code == 0
        summary = json.loads(out)
        assert summary["oracle_ok"] is True
        assert summary["nodes"] == 8
        assert summary["oracle_checks"] > 0
        assert summary["messages_delivered"] > 0

    def test_live_text_output(self, capsys):
        code, out, _ = run_cli(
            capsys, "live", "--duration", "0.3", "--set", "n=8"
        )
        assert code == 0
        assert "live_ring" in out
        assert "oracle: OK" in out

    def test_unknown_workload_exits_two(self, capsys):
        code, _, err = run_cli(capsys, "live", "--workload", "nope")
        assert code == 2
        assert "live workloads" in err

    def test_non_live_workload_exits_two(self, capsys):
        code, _, err = run_cli(
            capsys, "live", "--workload", "static_ring", "--set", "n=6"
        )
        assert code == 2
        assert "does not use the live runtime" in err

    def test_bad_set_value_exits_two(self, capsys):
        code, _, err = run_cli(
            capsys, "live", "--duration", "0.2", "--set", "bogus_kw=1"
        )
        assert code == 2
        assert "error" in err


class TestPrune:
    @pytest.fixture
    def versioned_root(self, tmp_path):
        from repro import __version__

        root = tmp_path / "cache"
        for version in ("v0.0.1", "v0.9.9", f"v{__version__}"):
            shard = root / version / "ab"
            shard.mkdir(parents=True)
            (shard / "abcd.json").write_text("{}")
        return root

    def test_prune_removes_only_stale_versions(self, capsys, versioned_root):
        from repro import __version__

        code, out, _ = run_cli(capsys, "prune", "--store", str(versioned_root))
        assert code == 0
        assert "v0.0.1" in out and "v0.9.9" in out
        survivors = sorted(p.name for p in versioned_root.iterdir())
        assert survivors == [f"v{__version__}"]

    def test_prune_dry_run_deletes_nothing(self, capsys, versioned_root):
        code, out, _ = run_cli(
            capsys, "prune", "--store", str(versioned_root), "--dry-run"
        )
        assert code == 0
        assert "would remove" in out
        assert len(list(versioned_root.iterdir())) == 3

    def test_prune_all_clears_current_version_too(self, capsys, versioned_root):
        code, out, _ = run_cli(
            capsys, "prune", "--store", str(versioned_root), "--all"
        )
        assert code == 0
        assert "3 directories" in out and "3 entries" in out
        assert list(versioned_root.iterdir()) == []

    def test_prune_all_clears_plain_store_shards(self, capsys, store_dir):
        run_cli(capsys, *SWEEP_ARGS, "--store", store_dir)
        assert len(ResultStore(store_dir)) == 4
        code, _, _ = run_cli(capsys, "prune", "--store", store_dir, "--all")
        assert code == 0
        assert len(ResultStore(store_dir)) == 0
        # Without --all, plain shards are not version directories: kept.
        run_cli(capsys, *SWEEP_ARGS, "--store", store_dir)
        code, out, _ = run_cli(capsys, "prune", "--store", store_dir)
        assert "nothing to prune" in out
        assert len(ResultStore(store_dir)) == 4

    def test_prune_never_touches_non_version_directories(self, capsys, versioned_root):
        # Regression: 'venv' starts with 'v' but is not a version dir.
        for name in ("venv", "vendor"):
            (versioned_root / name).mkdir()
            (versioned_root / name / "keep.txt").write_text("precious")
        run_cli(capsys, "prune", "--store", str(versioned_root), "--all")
        survivors = sorted(p.name for p in versioned_root.iterdir())
        assert survivors == ["vendor", "venv"]

    def test_prune_missing_root_is_a_noop(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys, "prune", "--store", str(tmp_path / "nope")
        )
        assert code == 0
        assert "nothing to prune" in out


class TestRunCommand:
    RUN_ARGS = ("run", "static_ring", "--set", "n=6", "horizon=15")

    def test_run_prints_summary_and_throughput(self, capsys):
        code, out, _ = run_cli(capsys, *self.RUN_ARGS)
        assert code == 0
        assert "static_ring(n=6" in out
        assert "events/s" in out

    def test_run_json_is_machine_readable(self, capsys):
        code, out, _ = run_cli(capsys, *self.RUN_ARGS, "--json")
        assert code == 0
        payload = json.loads(out)
        assert payload["workload"] == "static_ring"
        assert payload["nodes"] == 6
        assert payload["events"] > 0
        assert payload["events_per_sec"] > 0
        assert payload["oracle_ok"] is None  # workload has no oracle attached

    def test_run_profile_prints_top_entries(self, capsys):
        code, out, _ = run_cli(capsys, *self.RUN_ARGS, "--profile")
        assert code == 0
        assert "profile: top 25 by cumulative time" in out
        # cProfile table landed on stdout, topped by the experiment runner.
        assert "cumtime" in out
        assert "run_experiment" in out

    def test_run_huge_workload_reports_oracle_verdict(self, capsys):
        # huge_ring attaches the standard oracle by default; a tiny
        # instance must run conformantly and surface the verdict.
        code, out, _ = run_cli(
            capsys, "run", "huge_ring", "--set", "n=6", "horizon=10", "--json"
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["oracle_ok"] is True
        assert payload["oracle_checks"] > 0

    def test_run_invalid_params_exit_two(self, capsys):
        code, _, err = run_cli(
            capsys, "run", "huge_ring", "--set", "n=6", "horizon=10", "b0=0.4"
        )
        assert code == 2
        assert "b0 must exceed" in err

    def test_run_json_with_profile_keeps_stdout_parseable(self, capsys):
        code, out, err = run_cli(capsys, *self.RUN_ARGS, "--json", "--profile")
        assert code == 0
        payload = json.loads(out)  # stdout is exactly one JSON document
        assert payload["workload"] == "static_ring"
        assert "profile: top 25 by cumulative time" in err

    def test_run_unknown_workload_is_exit_two(self, capsys):
        code, _, err = run_cli(capsys, "run", "nope")
        assert code == 2
        assert "unknown workload" in err

    def test_run_bad_argument_is_exit_two(self, capsys):
        code, _, err = run_cli(capsys, "run", "static_ring", "--set", "bogus=1")
        assert code == 2
        assert "error" in err


class TestTelemetry:
    """`--metrics`/`--stats` on run, and the `top` viewer."""

    #: Oracle-attached workload so all three instrument families appear.
    RUN_ARGS = ("run", "large_ring", "--set", "n=16", "horizon=15")

    def _record(self, capsys, tmp_path, *extra: str) -> tuple[int, str, str, str]:
        path = str(tmp_path / "m.jsonl")
        code, out, err = run_cli(
            capsys, *self.RUN_ARGS, "--metrics", path, *extra
        )
        return code, out, err, path

    def test_metrics_file_has_valid_frames(self, capsys, tmp_path):
        from repro.telemetry import read_frames

        code, _, _, path = self._record(capsys, tmp_path)
        assert code == 0
        frames = read_frames(path)  # validates every frame
        assert len(frames) >= 2  # start frame + final frame
        last = frames[-1]
        names = last["counters"].keys() | last["gauges"].keys()
        for prefix in ("kernel.", "transport.", "oracle."):
            assert any(k.startswith(prefix) for k in names), prefix
        assert last["counters"]["kernel.events_dispatched"] > 0

    def test_stats_prints_end_of_run_table(self, capsys, tmp_path):
        code, out, _, _ = self._record(capsys, tmp_path, "--stats")
        assert code == 0
        assert "end-of-run stats" in out
        assert "kernel.events_dispatched" in out
        assert "events/sec:" in out

    def test_stats_without_metrics_file(self, capsys):
        code, out, _ = run_cli(capsys, *self.RUN_ARGS, "--stats")
        assert code == 0
        assert "end-of-run stats" in out

    def test_stats_under_json_keeps_stdout_parseable(self, capsys, tmp_path):
        code, out, err, _ = self._record(capsys, tmp_path, "--stats", "--json")
        assert code == 0
        payload = json.loads(out)  # stdout is exactly one JSON document
        assert payload["workload"] == "large_ring"
        assert "end-of-run stats" in err

    def test_top_renders_final_snapshot(self, capsys, tmp_path):
        _, _, _, path = self._record(capsys, tmp_path)
        code, out, _ = run_cli(capsys, "top", path)
        assert code == 0
        assert "kernel.events_dispatched" in out
        assert "events/sec:" in out  # whole-run rate vs first frame

    def test_top_empty_file_is_exit_one(self, capsys, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        code, _, err = run_cli(capsys, "top", str(empty))
        assert code == 1
        assert "no frames" in err

    def test_top_invalid_frame_is_exit_two(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"v": 1}\n')
        code, _, err = run_cli(capsys, "top", str(bad))
        assert code == 2
        assert "error" in err

    def test_top_missing_file_is_exit_two(self, capsys, tmp_path):
        code, _, err = run_cli(capsys, "top", str(tmp_path / "nope.jsonl"))
        assert code == 2
        assert "error" in err
