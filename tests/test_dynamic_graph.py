"""Tests for the event-sourced dynamic graph and interval connectivity."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.network.graph import DynamicGraph, GraphError, edge_key
from repro.network.topology import path_edges, ring_edges


class TestBasics:
    def test_initial_edges(self):
        g = DynamicGraph(range(4), [(0, 1), (1, 2)])
        assert g.has_edge(0, 1) and g.has_edge(2, 1)
        assert not g.has_edge(0, 2)
        assert g.edge_count() == 2

    def test_edge_key_canonical(self):
        assert edge_key(3, 1) == (1, 3) == edge_key(1, 3)

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(GraphError):
            DynamicGraph([1, 1, 2])

    def test_self_loop_rejected(self):
        g = DynamicGraph(range(3))
        with pytest.raises(GraphError):
            g.add_edge(1, 1, 0.0)

    def test_unknown_node_rejected(self):
        g = DynamicGraph(range(3))
        with pytest.raises(GraphError):
            g.add_edge(0, 99, 0.0)

    def test_double_add_rejected(self):
        g = DynamicGraph(range(3), [(0, 1)])
        with pytest.raises(GraphError):
            g.add_edge(1, 0, 1.0)

    def test_remove_absent_rejected(self):
        g = DynamicGraph(range(3))
        with pytest.raises(GraphError):
            g.remove_edge(0, 1, 1.0)

    def test_time_ordering_enforced(self):
        g = DynamicGraph(range(3))
        g.add_edge(0, 1, 5.0)
        with pytest.raises(GraphError):
            g.add_edge(1, 2, 4.0)

    def test_same_instant_same_edge_rejected(self):
        g = DynamicGraph(range(3))
        g.add_edge(0, 1, 5.0)
        with pytest.raises(GraphError):
            g.remove_edge(0, 1, 5.0)

    def test_neighbors_and_degree(self):
        g = DynamicGraph(range(4), ring_edges(4))
        assert g.degree(0) == 2
        assert g.neighbors(0) == {1, 3}

    def test_listeners_invoked(self):
        g = DynamicGraph(range(3))
        events = []
        g.subscribe(lambda t, u, v, a: events.append((t, u, v, a)))
        g.add_edge(2, 0, 1.0)
        g.remove_edge(0, 2, 2.0)
        assert events == [(1.0, 0, 2, True), (2.0, 0, 2, False)]


class TestHistory:
    def _flappy(self):
        g = DynamicGraph(range(2))
        g.add_edge(0, 1, 1.0)
        g.remove_edge(0, 1, 3.0)
        g.add_edge(0, 1, 5.0)
        return g

    def test_exists_at(self):
        g = self._flappy()
        assert not g.exists_at(0, 1, 0.5)
        assert g.exists_at(0, 1, 1.0)   # state after the event at t=1
        assert g.exists_at(0, 1, 2.9)
        assert not g.exists_at(0, 1, 3.0)  # removed at t=3 inclusive
        assert not g.exists_at(0, 1, 4.9)
        assert g.exists_at(0, 1, 5.0)

    def test_removed_during(self):
        g = self._flappy()
        assert g.removed_during(0, 1, 2.0, 4.0)
        assert g.removed_during(0, 1, 2.9, 3.0)  # window is (t1, t2]
        assert not g.removed_during(0, 1, 3.0, 4.0)
        assert not g.removed_during(0, 1, 0.0, 0.9)

    def test_exists_throughout(self):
        g = self._flappy()
        assert g.exists_throughout(0, 1, 1.0, 2.5)
        assert not g.exists_throughout(0, 1, 1.0, 3.0)
        assert g.exists_throughout(0, 1, 5.0, 100.0)
        with pytest.raises(ValueError):
            g.exists_throughout(0, 1, 2.0, 1.0)

    def test_edges_at(self):
        g = self._flappy()
        assert g.edges_at(2.0) == [(0, 1)]
        assert g.edges_at(4.0) == []

    def test_history_list(self):
        g = self._flappy()
        assert g.history(1, 0) == [(1.0, True), (3.0, False), (5.0, True)]


class TestConnectivity:
    def test_connected_now(self):
        g = DynamicGraph(range(4), path_edges(4))
        assert g.is_connected_now()
        g.remove_edge(1, 2, 1.0)
        assert not g.is_connected_now()

    def test_single_node_connected(self):
        assert DynamicGraph([7]).is_connected_now()

    def test_connected_throughout_window(self):
        g = DynamicGraph(range(3), path_edges(3))
        g.remove_edge(0, 1, 5.0)
        g.add_edge(0, 2, 6.0)
        # During [0, 4] the original path exists throughout.
        assert g.is_connected_throughout(0.0, 4.0)
        # During [4, 7] edge (0,1) disappears and (0,2) appears late:
        # neither exists *throughout*, so the static subgraph is disconnected.
        assert not g.is_connected_throughout(4.0, 7.0)
        # After 6, the new topology is stable.
        assert g.is_connected_throughout(6.0, 10.0)

    def test_interval_connectivity_holds_for_stable_backbone(self):
        g = DynamicGraph(range(5), path_edges(5))
        g.add_edge(0, 2, 1.0)
        g.remove_edge(0, 2, 4.0)
        g.add_edge(1, 4, 6.0)
        assert g.check_interval_connectivity(2.0, t_end=10.0)

    def test_interval_connectivity_detects_gap(self):
        g = DynamicGraph(range(3), path_edges(3))
        g.remove_edge(0, 1, 5.0)  # permanently disconnects node 0
        assert not g.check_interval_connectivity(2.0, t_end=10.0)

    def test_distances(self):
        g = DynamicGraph(range(5), path_edges(5))
        d = g.distances_from(0)
        assert d == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_distances_historic(self):
        g = DynamicGraph(range(4), path_edges(4))
        g.add_edge(0, 3, 2.0)
        assert g.distances_from(0, t=1.0)[3] == 3
        assert g.distances_from(0, t=2.5)[3] == 1


@given(
    st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5), st.booleans()),
        max_size=40,
    )
)
def test_property_exists_at_matches_replay(script):
    """exists_at(t) agrees with a naive forward replay of the history."""
    g = DynamicGraph(range(6))
    applied = []  # (time, u, v, added)
    t = 1.0
    for u, v, want_add in script:
        if u == v:
            continue
        if want_add and not g.has_edge(u, v):
            g.add_edge(u, v, t)
            applied.append((t, *edge_key(u, v), True))
        elif not want_add and g.has_edge(u, v):
            g.remove_edge(u, v, t)
            applied.append((t, *edge_key(u, v), False))
        t += 1.0
    # Naive replay check at half-integer probe times.
    probe = 0.5
    while probe < t + 1:
        state: dict[tuple[int, int], bool] = {}
        for et, u, v, added in applied:
            if et <= probe:
                state[(u, v)] = added
        for (u, v), present in state.items():
            assert g.exists_at(u, v, probe) == present
        probe += 1.0
