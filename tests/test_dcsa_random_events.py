"""Property tests: a DCSA node under arbitrary event sequences.

Drives a single node with randomized interleavings of messages, discovery
events and time advances (the node cannot tell whether the environment is
'legal', so its local invariants must hold under *any* sequence):

* the logical clock never decreases and respects the rate floor;
* ``Lmax >= L`` after every event;
* after ``AdjustClock``, no tracked neighbour's constraint is exceeded
  *at the moment of adjustment* (modulo estimates, per Lemma 6.6);
* eviction: a neighbour silent for Delta T' subjective time leaves Gamma.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SystemParams
from repro.core.dcsa import DCSANode
from repro.sim.clocks import ConstantRateClock
from repro.sim.simulator import Simulator


class SinkTransport:
    def send(self, u, v, payload):
        pass


events = st.lists(
    st.one_of(
        st.tuples(st.just("advance"), st.floats(min_value=0.01, max_value=5.0)),
        st.tuples(
            st.just("msg"),
            st.integers(min_value=1, max_value=4),
            st.floats(min_value=0.0, max_value=50.0),  # L_v
            st.floats(min_value=0.0, max_value=80.0),  # Lmax_v
        ),
        st.tuples(st.just("add"), st.integers(min_value=1, max_value=4)),
        st.tuples(st.just("remove"), st.integers(min_value=1, max_value=4)),
    ),
    min_size=1,
    max_size=40,
)


def drive(node: DCSANode, sim: Simulator, script) -> list[tuple[float, float, float]]:
    """Apply the script; return (time, L, Lmax) after each event."""
    out = []
    t = 0.0
    for ev in script:
        if ev[0] == "advance":
            t += ev[1]
            sim.run_until(t)
        elif ev[0] == "msg":
            _, v, l_v, lmax_v = ev
            node.on_message(v, (float(l_v), float(max(l_v, lmax_v))))
        elif ev[0] == "add":
            node.on_discover_add(ev[1])
        else:
            node.on_discover_remove(ev[1])
        out.append((sim.now, node.logical_clock(), node.max_estimate()))
    return out


@settings(max_examples=80)
@given(events)
def test_property_node_invariants_under_arbitrary_events(script):
    sim = Simulator()
    params = SystemParams.for_network(5)
    node = DCSANode(0, sim, ConstantRateClock(1.0), SinkTransport(), params)
    node.start()
    trace = drive(node, sim, script)
    # Monotone logical clock with rate floor between consecutive readings.
    for (t1, l1, m1), (t2, l2, m2) in zip(trace, trace[1:]):
        assert l2 >= l1 - 1e-9, "logical clock decreased"
        assert l2 - l1 >= 0.5 * (t2 - t1) - 1e-9, "rate floor violated"
    # Lmax dominates L everywhere.
    for _t, l, m in trace:
        assert m >= l - 1e-9


@settings(max_examples=80)
@given(events)
def test_property_jumps_respect_constraints(script):
    """A *discrete jump* never lands above any tracked neighbour's
    constraint ``est + B(age)`` nor above ``Lmax`` (AdjustClock's
    postcondition). Between jumps the clock may sit above a newly formed
    constraint — the node is then 'blocked' and only drifts, which the
    monotonicity test covers.

    The per-neighbour check is evaluated only after *instantaneous* input
    events (msg/add/remove), where the jump demonstrably happened at the
    current instant.  A jump inside an ``advance`` window fired at some
    interior timer, and ``B`` decays while ``L`` only drifts, so
    re-evaluating the constraint at the window's end is not the
    algorithm's postcondition (AdjustClock held at the jump instant); the
    ``Lmax`` dominance check remains valid at any later time because both
    quantities advance at the same hardware rate."""
    sim = Simulator()
    params = SystemParams.for_network(5)
    node = DCSANode(0, sim, ConstantRateClock(1.0), SinkTransport(), params)
    node.start()
    t = 0.0
    jumps_before = 0
    for ev in script:
        instantaneous = ev[0] != "advance"
        if ev[0] == "advance":
            t += ev[1]
            sim.run_until(t)
        elif ev[0] == "msg":
            _, v, l_v, lmax_v = ev
            node.on_message(v, (float(l_v), float(max(l_v, lmax_v))))
        elif ev[0] == "add":
            node.on_discover_add(ev[1])
        else:
            node.on_discover_remove(ev[1])
        if node.jumps > jumps_before:  # a discrete jump just happened
            l_now = node.logical_clock()
            assert l_now <= node.max_estimate() + 1e-9
            if instantaneous:
                for v in node.gamma:
                    row = node.gamma.get(v)
                    bound = row.l_est + node.params.b_function(
                        node.hardware_clock() - row.added_h
                    )
                    assert l_now <= bound + 1e-9, (
                        f"jump overshot constraint of neighbour {v}"
                    )
        jumps_before = node.jumps


def test_eviction_after_silence():
    sim = Simulator()
    params = SystemParams.for_network(5)
    node = DCSANode(0, sim, ConstantRateClock(1.0), SinkTransport(), params)
    node.on_message(3, (0.0, 0.0))
    assert 3 in node.gamma
    sim.run_until(params.delta_t_prime + 0.01)
    assert 3 not in node.gamma


def test_messages_counted():
    sim = Simulator()
    params = SystemParams.for_network(5)
    node = DCSANode(0, sim, ConstantRateClock(1.0), SinkTransport(), params)
    node.on_discover_add(1)
    node.on_discover_add(2)
    node.start()
    sim.run_until(params.tick_interval * 2.5)
    # greet x2 + 3 tick rounds x2 neighbours.
    assert node.messages_sent == 2 + 3 * 2
