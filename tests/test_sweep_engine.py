"""Tests for the sweep engine: determinism, backend parity, caching.

The acceptance-level checks live here: a >= 8-config sweep through
``SweepEngine(processes=4)`` must produce metric rows identical to the
serial backend, and an immediate rerun must be served entirely from the
store with zero new writes.
"""

from __future__ import annotations

import pytest

from repro.harness import ExperimentConfig, configs, run_experiment
from repro.sweep import (
    ResultStore,
    SweepEngine,
    SweepSpec,
    config_hash,
    grid,
    seeds,
    sweep_csv,
    tidy_rows,
)


def small_spec() -> SweepSpec:
    """8 fast configs: 2 sizes x 2 algorithms x 2 seeds on a short ring."""
    return SweepSpec(
        "static_ring",
        base={"horizon": 20.0},
        axes=[grid(n=[5, 6], algorithm=["dcsa", "max"]), seeds(2)],
    )


class TestDeterminism:
    def test_same_config_and_seed_is_bit_identical(self):
        """Determinism regression: two runs of one config agree exactly."""
        cfg = configs.backbone_churn(6, horizon=25.0, seed=3)
        r1 = run_experiment(cfg)
        r2 = run_experiment(ExperimentConfig.from_dict(cfg.to_dict()))
        assert r1.max_global_skew == r2.max_global_skew
        assert r1.max_local_skew == r2.max_local_skew
        assert r1.events_dispatched == r2.events_dispatched

    def test_parallel_backend_matches_direct_run(self):
        cfg = configs.static_path(6, horizon=25.0, seed=1)
        direct = run_experiment(cfg)
        (row,) = SweepEngine(processes=2).run([cfg]).rows
        assert row.metrics["max_global_skew"] == direct.max_global_skew
        assert row.metrics["max_local_skew"] == direct.max_local_skew


class TestBackendParity:
    def test_eight_config_parallel_matches_serial_and_rerun_is_free(self, tmp_path):
        spec = small_spec()
        assert len(spec) == 8

        serial_store = ResultStore(tmp_path / "serial")
        serial = SweepEngine(processes=None, store=serial_store).run(spec)

        par_store = ResultStore(tmp_path / "parallel")
        parallel = SweepEngine(processes=4, store=par_store).run(spec)

        assert len(serial) == len(parallel) == 8
        assert serial_store.writes == par_store.writes == 8
        for s_row, p_row in zip(serial.rows, parallel.rows):
            assert s_row.key == p_row.key
            assert s_row.metrics == p_row.metrics
            assert s_row.index == p_row.index

        # Immediate rerun: everything cached, zero new store writes.
        rerun_store = ResultStore(tmp_path / "parallel")
        rerun = SweepEngine(processes=4, store=rerun_store).run(spec)
        assert rerun.cached_count == 8
        assert rerun.executed_count == 0
        assert rerun_store.writes == 0
        for p_row, c_row in zip(parallel.rows, rerun.rows):
            assert p_row.metrics == c_row.metrics

    def test_rows_keep_expansion_order(self, tmp_path):
        spec = small_spec()
        result = SweepEngine(processes=3).run(spec)
        expected = [config_hash(c.to_dict()) for c in spec.expand()]
        assert [r.key for r in result.rows] == expected
        assert [r.index for r in result.rows] == list(range(8))


class TestEngineBehaviour:
    def test_progress_callback_sees_every_point(self, tmp_path):
        seen = []
        store = ResultStore(tmp_path / "cache")
        spec = SweepSpec("static_ring", base={"n": 5, "horizon": 15.0}, axes=[seeds(3)])
        SweepEngine(store=store, progress=lambda d, t, r: seen.append((d, t, r.cached))).run(spec)
        assert seen == [(1, 3, False), (2, 3, False), (3, 3, False)]
        seen.clear()
        SweepEngine(store=store, progress=lambda d, t, r: seen.append((d, t, r.cached))).run(spec)
        assert seen == [(1, 3, True), (2, 3, True), (3, 3, True)]

    def test_duplicate_configs_share_one_execution(self, tmp_path):
        cfg = configs.static_ring(5, horizon=15.0)
        store = ResultStore(tmp_path / "cache")
        result = SweepEngine(store=store).run([cfg, cfg])
        assert store.writes == 1
        assert result.rows[0].metrics == result.rows[1].metrics
        assert not result.rows[0].cached and result.rows[1].cached

    def test_reuse_cache_false_recomputes(self, tmp_path):
        cfg = configs.static_ring(5, horizon=15.0)
        store = ResultStore(tmp_path / "cache")
        SweepEngine(store=store).run([cfg])
        result = SweepEngine(store=store).run([cfg], reuse_cache=False)
        assert result.executed_count == 1
        assert store.writes == 2

    def test_failing_config_raises_with_name(self):
        cfg = configs.static_ring(5, horizon=15.0)
        cfg.algorithm = "nope"  # passes to_dict, fails at build time
        with pytest.raises(RuntimeError, match="static_ring"):
            SweepEngine().run([cfg])
        with pytest.raises(RuntimeError, match="static_ring"):
            SweepEngine(processes=2).run([cfg])

    def test_negative_processes_rejected(self):
        with pytest.raises(ValueError, match="processes"):
            SweepEngine(processes=-1)


class TestMetricsDir:
    def test_executed_points_write_one_frame_each(self, tmp_path):
        from repro.telemetry import read_frames

        spec = SweepSpec("static_ring", base={"n": 5, "horizon": 15.0}, axes=[seeds(2)])
        mdir = tmp_path / "metrics"
        store = ResultStore(tmp_path / "cache")
        result = SweepEngine(store=store, metrics_dir=str(mdir)).run(spec)
        files = sorted(p.name for p in mdir.glob("*.jsonl"))
        # One flight-recorder file per executed point, named by key prefix.
        assert files == sorted(r.key[:16] + ".jsonl" for r in result.rows)
        for row in result.rows:
            frames = read_frames(str(mdir / (row.key[:16] + ".jsonl")))
            assert len(frames) == 1
            assert frames[0]["source"].startswith("static_ring")
            assert frames[0]["counters"]["kernel.events_dispatched"] > 0

    def test_cached_points_write_nothing(self, tmp_path):
        spec = SweepSpec("static_ring", base={"n": 5, "horizon": 15.0}, axes=[seeds(2)])
        store = ResultStore(tmp_path / "cache")
        SweepEngine(store=store).run(spec)  # warm the store, no metrics
        mdir = tmp_path / "metrics"
        rerun = SweepEngine(store=store, metrics_dir=str(mdir)).run(spec)
        assert rerun.cached_count == 2 and rerun.executed_count == 0
        # Fully-cached sweep: the directory is never even created.
        assert not mdir.exists()

    def test_parallel_backend_writes_metrics_too(self, tmp_path):
        mdir = tmp_path / "metrics"
        cfgs = [configs.static_ring(5, horizon=15.0, seed=s) for s in (1, 2, 3)]
        result = SweepEngine(processes=2, metrics_dir=str(mdir)).run(cfgs)
        assert result.executed_count == 3
        assert len(list(mdir.glob("*.jsonl"))) == 3


class TestAggregation:
    def test_tidy_rows_join_coords_and_metrics(self):
        spec = SweepSpec("static_ring", base={"n": 5, "horizon": 15.0}, axes=[seeds(2)])
        rows = tidy_rows(SweepEngine().run(spec))
        assert [r["seed"] for r in rows] == [0, 1]
        assert all(r["n"] == 5 for r in rows)
        assert all("max_global_skew" in r for r in rows)

    def test_csv_has_header_and_rows(self):
        spec = SweepSpec("static_ring", base={"horizon": 15.0, "n": 5}, axes=[seeds(2)])
        text = sweep_csv(SweepEngine().run(spec), columns=["seed", "max_global_skew"])
        lines = text.strip().splitlines()
        assert lines[0] == "seed,max_global_skew"
        assert len(lines) == 3
