"""Tests for the experiment harness: configs, wiring, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro import SystemParams
from repro.harness import ExperimentConfig, build_experiment, configs, run_experiment
from repro.network.topology import path_edges


class TestConfigs:
    def test_all_canned_configs_build(self):
        cfgs = [
            configs.static_path(8, horizon=20.0),
            configs.static_ring(8, horizon=20.0),
            configs.static_grid(2, 4, horizon=20.0),
            configs.backbone_churn(8, horizon=20.0),
            configs.rotating_backbone(8, horizon=50.0, window=12.0),
            configs.mobile_network(8, horizon=20.0),
            configs.edge_insertion(8, t_insert=10.0, horizon=30.0),
            configs.flapping_edges(8, horizon=20.0),
            configs.two_chain_insertion(10, t_insert=10.0, horizon=30.0),
        ]
        for cfg in cfgs:
            exp = build_experiment(cfg)
            assert len(exp.nodes) == cfg.params.n

    def test_unknown_algorithm_rejected(self):
        cfg = configs.static_path(4)
        cfg.algorithm = "nope"
        with pytest.raises(ValueError, match="unknown algorithm"):
            build_experiment(cfg)

    def test_unknown_specs_rejected(self):
        cfg = configs.static_path(4)
        cfg.clock_spec = "warp"
        with pytest.raises(ValueError, match="clock spec"):
            build_experiment(cfg)
        cfg = configs.static_path(4)
        cfg.delay_spec = "warp"
        with pytest.raises(ValueError, match="delay spec"):
            build_experiment(cfg)
        cfg = configs.static_path(4)
        cfg.discovery_spec = "warp"
        with pytest.raises(ValueError, match="discovery spec"):
            build_experiment(cfg)

    def test_callable_specs(self):
        from repro.network.channels import ConstantDelay
        from repro.network.discovery import ConstantDiscovery
        from repro.sim.clocks import ConstantRateClock

        cfg = ExperimentConfig(
            params=SystemParams.for_network(4),
            initial_edges=path_edges(4),
            clock_spec=lambda i, p, rng, h: ConstantRateClock(1.0),
            delay_spec=lambda p, rng: ConstantDelay(0.1),
            discovery_spec=lambda p, rng: ConstantDiscovery(0.1),
            horizon=10.0,
        )
        res = run_experiment(cfg)
        assert res.max_global_skew >= 0.0

    def test_drift_violating_clock_spec_rejected(self):
        from repro.sim.clocks import ConstantRateClock

        cfg = ExperimentConfig(
            params=SystemParams.for_network(4),
            initial_edges=path_edges(4),
            clock_spec=lambda i, p, rng, h: ConstantRateClock(2.0),
            horizon=10.0,
        )
        with pytest.raises(ValueError, match="drift"):
            build_experiment(cfg)


class TestRunResult:
    def test_summary_contains_key_facts(self):
        res = run_experiment(configs.static_ring(6, horizon=30.0))
        s = res.summary()
        assert "n=6" in s and "global skew" in s and "messages" in s

    def test_stats_exposed(self):
        res = run_experiment(configs.static_ring(6, horizon=30.0))
        assert res.transport_stats["sent"] > 0
        assert res.events_dispatched > 0
        assert res.total_jumps() >= 0

    def test_trace_collection(self):
        cfg = configs.static_path(4, horizon=10.0)
        cfg.trace = True
        res = run_experiment(cfg)
        assert res.trace is not None
        assert len(res.trace.filter(kind="send")) > 0

    def test_summary_reports_trace_drops(self):
        from repro.sim.tracing import TraceRecorder

        cfg = configs.static_path(4, horizon=10.0)
        cfg.trace = True
        res = run_experiment(cfg)
        assert "trace records dropped" not in res.summary()
        capped = TraceRecorder(capacity=2)
        for i in range(5):
            capped.record(float(i), "send", i)
        res.trace = capped
        assert "trace records dropped: 3 (capacity 2)" in res.summary()

    def test_summary_reports_oracle_truncation(self):
        from repro.oracle.oracle import OracleReport

        res = run_experiment(configs.static_ring(6, horizon=30.0))
        res.oracle_report = OracleReport(
            ok=False,
            checks=10,
            violation_count=7,
            violations=(),  # the max_recorded cap dropped all 7 records
            worst_margin=-1.0,
        )
        s = res.summary()
        assert "7 violations" in s
        assert "oracle violations truncated: 7 not recorded" in s


class TestDeterminism:
    def test_same_seed_same_results(self):
        a = run_experiment(configs.backbone_churn(8, horizon=40.0, seed=11))
        b = run_experiment(configs.backbone_churn(8, horizon=40.0, seed=11))
        assert np.array_equal(a.record.clocks, b.record.clocks)
        assert a.transport_stats == b.transport_stats
        assert a.events_dispatched == b.events_dispatched

    def test_different_seed_differs(self):
        a = run_experiment(configs.backbone_churn(8, horizon=40.0, seed=11))
        b = run_experiment(configs.backbone_churn(8, horizon=40.0, seed=12))
        assert not np.array_equal(a.record.clocks, b.record.clocks)

    def test_trace_determinism(self):
        cfg1 = configs.static_path(5, horizon=20.0, seed=3)
        cfg1.trace = True
        cfg2 = configs.static_path(5, horizon=20.0, seed=3)
        cfg2.trace = True
        t1 = run_experiment(cfg1).trace.records
        t2 = run_experiment(cfg2).trace.records
        assert t1 == t2


class TestClockSpecs:
    @pytest.mark.parametrize(
        "spec", ["perfect", "random_walk", "split", "alternating", "uniform"]
    )
    def test_all_specs_run(self, spec):
        cfg = configs.static_path(6, horizon=15.0)
        cfg.clock_spec = spec
        res = run_experiment(cfg)
        assert res.record.samples > 0

    @pytest.mark.parametrize("spec", ["uniform", "max", "half", "zero"])
    def test_all_delay_specs_run(self, spec):
        cfg = configs.static_path(6, horizon=15.0)
        cfg.delay_spec = spec
        res = run_experiment(cfg)
        assert res.transport_stats["delivered"] > 0


class TestHugeWorkloads:
    """The production-scale workload family (scaled down for test speed)."""

    def test_huge_workloads_registered(self):
        for name in ("huge_ring", "huge_grid", "huge_churn_ring"):
            assert name in configs.WORKLOADS

    def test_huge_ring_runs_checked_without_recorder(self):
        res = run_experiment(configs.huge_ring(12, horizon=12.0))
        assert res.record.samples == 0  # recorder off by design
        assert res.events_dispatched > 0
        assert res.oracle_report is not None and res.oracle_report.ok

    def test_huge_grid_runs_checked(self):
        res = run_experiment(configs.huge_grid(3, 4, horizon=12.0))
        assert res.params.n == 12
        assert res.oracle_report is not None and res.oracle_report.ok

    def test_huge_churn_ring_churns_and_stays_conformant(self):
        res = run_experiment(configs.huge_churn_ring(12, horizon=15.0))
        assert res.graph.edge_events > 12  # backbone + rewiring happened
        assert res.oracle_report is not None and res.oracle_report.ok

    def test_huge_configs_serialize(self):
        for cfg in (
            configs.huge_ring(12),
            configs.huge_grid(3, 4),
            configs.huge_churn_ring(12),
        ):
            rebuilt = ExperimentConfig.from_dict(cfg.to_dict())
            assert rebuilt.to_dict() == cfg.to_dict()


class TestEngineRegistry:
    def test_sim_runtime_resolves_through_registry(self):
        from repro.harness.registry import RUNTIME_BUILDERS

        assert "sim" in RUNTIME_BUILDERS
        res = run_experiment(configs.static_ring(5, horizon=10.0))
        assert res.events_dispatched > 0

    def test_unknown_runtime_rejected(self):
        cfg = configs.static_ring(5, horizon=10.0)
        cfg.runtime = "warp-drive"
        with pytest.raises(ValueError, match="unknown runtime"):
            run_experiment(cfg)


class TestDenseNodeState:
    def test_experiment_exposes_flat_node_list(self):
        exp = build_experiment(configs.static_ring(6, horizon=5.0))
        assert len(exp.node_list) == 6
        for i, node in enumerate(exp.node_list):
            assert exp.nodes[i] is node

    def test_node_table_registered_on_simulator(self):
        from repro.core.node import NodeTable

        exp = build_experiment(configs.static_ring(6, horizon=5.0))
        table = exp.sim.subsystems["node_table"]
        assert isinstance(table, NodeTable)
        assert table.drivers_for(sorted(exp.nodes)) == exp.node_list

    def test_node_table_rejects_unregistered_ids(self):
        from repro.core.node import NodeTable

        exp = build_experiment(configs.static_ring(4, horizon=5.0))
        table = exp.sim.subsystems["node_table"]
        with pytest.raises(KeyError):
            table.drivers_for([99])
