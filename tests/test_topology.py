"""Tests for static topology builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.topology import (
    binary_tree_edges,
    complete_edges,
    diameter_of,
    grid_edges,
    path_edges,
    random_geometric,
    random_regular_edges,
    ring_edges,
    star_edges,
    two_chain_edges,
)


def _is_connected(n, edges):
    adj = {u: [] for u in range(n)}
    for u, v in edges:
        adj[u].append(v)
        adj[v].append(u)
    seen, stack = {0}, [0]
    while stack:
        x = stack.pop()
        for y in adj[x]:
            if y not in seen:
                seen.add(y)
                stack.append(y)
    return len(seen) == n


class TestBasicShapes:
    def test_path(self):
        e = path_edges(5)
        assert e == [(0, 1), (1, 2), (2, 3), (3, 4)]
        assert diameter_of(5, e) == 4

    def test_ring(self):
        e = ring_edges(6)
        assert len(e) == 6
        assert diameter_of(6, e) == 3

    def test_star(self):
        e = star_edges(7)
        assert len(e) == 6
        assert diameter_of(7, e) == 2

    def test_complete(self):
        e = complete_edges(5)
        assert len(e) == 10
        assert diameter_of(5, e) == 1

    def test_grid(self):
        e = grid_edges(3, 4)
        assert len(e) == 3 * 3 + 2 * 4  # horizontal + vertical
        assert diameter_of(12, e) == 2 + 3

    def test_binary_tree(self):
        e = binary_tree_edges(7)
        assert len(e) == 6
        assert _is_connected(7, e)

    def test_validation(self):
        with pytest.raises(ValueError):
            path_edges(0)
        with pytest.raises(ValueError):
            ring_edges(2)
        with pytest.raises(ValueError):
            grid_edges(0, 3)


class TestRandomTopologies:
    def test_geometric_connected(self, rng):
        edges, pos = random_geometric(20, 0.3, rng)
        assert pos.shape == (20, 2)
        assert _is_connected(20, edges)

    def test_geometric_radius_respected(self, rng):
        edges, pos = random_geometric(15, 0.25, rng, ensure_connected=False)
        for u, v in edges:
            assert np.linalg.norm(pos[u] - pos[v]) <= 0.25 + 1e-12

    def test_geometric_bridging_fallback(self, rng):
        # A tiny radius cannot connect 12 random points; bridges must kick in.
        edges, pos = random_geometric(12, 0.01, rng, max_tries=2)
        assert _is_connected(12, edges)

    def test_random_regular(self, rng):
        edges = random_regular_edges(12, 3, rng)
        deg = {u: 0 for u in range(12)}
        for u, v in edges:
            deg[u] += 1
            deg[v] += 1
        assert all(d == 3 for d in deg.values())
        assert _is_connected(12, edges)

    def test_random_regular_parity(self, rng):
        with pytest.raises(ValueError):
            random_regular_edges(7, 3, rng)


class TestTwoChain:
    def test_structure(self):
        edges, chains = two_chain_edges(12)
        a, b = chains["A"], chains["B"]
        assert a[0] == b[0] == 0
        assert a[-1] == b[-1] == 11
        # Interior nodes are disjoint and cover everything.
        interior = set(a[1:-1]) | set(b[1:-1])
        assert interior == set(range(1, 11))
        assert not (set(a[1:-1]) & set(b[1:-1]))
        assert _is_connected(12, edges)

    def test_chain_lengths_match_paper(self):
        # |I_A| = floor(n/2) - 1 interior nodes, |I_B| = ceil(n/2) - 1.
        for n in (8, 9, 12, 17):
            _, chains = two_chain_edges(n)
            assert len(chains["A"]) - 2 == n // 2 - 1
            assert len(chains["B"]) - 2 == (n + 1) // 2 - 1

    def test_edge_count(self):
        edges, chains = two_chain_edges(10)
        assert len(edges) == (len(chains["A"]) - 1) + (len(chains["B"]) - 1)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            two_chain_edges(5)


class TestDiameter:
    def test_disconnected_raises(self):
        with pytest.raises(ValueError):
            diameter_of(4, [(0, 1), (2, 3)])
