"""Tests for SystemParams: validation, derived quantities, B function."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import ParameterError, SystemParams


class TestValidation:
    def test_for_network_produces_valid_params(self):
        p = SystemParams.for_network(16)
        p.validate()  # must not raise
        assert p.n == 16

    def test_rho_zero_rejected(self):
        with pytest.raises(ParameterError, match="rho"):
            SystemParams(n=4, rho=0.0, b0=100.0).validate()

    def test_rho_half_rejected(self):
        # rho >= 0.5 would violate the logical-clock rate floor of 1/2.
        with pytest.raises(ParameterError, match="rho"):
            SystemParams(n=4, rho=0.5, b0=100.0).validate()

    def test_negative_max_delay_rejected(self):
        with pytest.raises(ParameterError, match="max_delay"):
            SystemParams(n=4, max_delay=-1.0, b0=100.0).validate()

    def test_zero_tick_rejected(self):
        with pytest.raises(ParameterError, match="tick_interval"):
            SystemParams(n=4, tick_interval=0.0, b0=100.0).validate()

    def test_n_one_rejected(self):
        with pytest.raises(ParameterError, match="n"):
            SystemParams(n=1, b0=100.0).validate()

    def test_discovery_must_exceed_max_delay(self):
        # The paper assumes D > max(T, delta_H / (1 - rho)).
        with pytest.raises(ParameterError, match="discovery_bound"):
            SystemParams(n=4, max_delay=1.0, discovery_bound=0.5, b0=100.0).validate()

    def test_b0_floor_enforced(self):
        p = SystemParams(n=4, b0=0.1)
        with pytest.raises(ParameterError, match="b0"):
            p.validate()

    def test_b0_just_above_floor_accepted(self):
        probe = SystemParams(n=4, b0=1.0)
        floor = 2.0 * (1.0 + probe.rho) * probe.tau
        SystemParams(n=4, b0=floor * 1.001).validate()

    def test_with_b0_validates(self):
        p = SystemParams.for_network(8)
        with pytest.raises(ParameterError):
            p.with_b0(0.01)

    def test_with_n_copies(self):
        p = SystemParams.for_network(8)
        q = p.with_n(32)
        assert q.n == 32 and q.b0 == p.b0 and q.rho == p.rho


class TestDerivedQuantities:
    def test_delta_t_formula(self):
        p = SystemParams.for_network(8, rho=0.25, max_delay=2.0, tick_interval=1.5,
                                     discovery_bound=4.0)
        assert p.delta_t == pytest.approx(2.0 + 1.5 / 0.75)

    def test_delta_t_prime_formula(self):
        p = SystemParams.for_network(8)
        assert p.delta_t_prime == pytest.approx((1 + p.rho) * p.delta_t)

    def test_tau_formula(self):
        p = SystemParams.for_network(8)
        expected = (1 + p.rho) / (1 - p.rho) * p.delta_t + p.max_delay + p.discovery_bound
        assert p.tau == pytest.approx(expected)

    def test_global_skew_bound_theorem_6_9(self):
        p = SystemParams.for_network(10, rho=0.02, max_delay=1.0, discovery_bound=2.0)
        expected = ((1.02) * 1.0 + 2 * 0.02 * 2.0) * 9
        assert p.global_skew_bound == pytest.approx(expected)

    def test_global_skew_scales_linearly_in_n(self):
        p = SystemParams.for_network(10)
        q = p.with_n(19)
        assert q.global_skew_bound == pytest.approx(2.0 * p.global_skew_bound)

    def test_w_window_lemma_6_10(self):
        p = SystemParams.for_network(8)
        expected = (4 * p.global_skew_bound / p.b0 + 1) * p.tau
        assert p.w_window == pytest.approx(expected)

    def test_describe_contains_all_keys(self):
        d = SystemParams.for_network(8).describe()
        for key in ("n", "rho", "tau", "global_skew_bound", "w_window", "b0"):
            assert key in d


class TestBFunction:
    def test_intercept_exceeds_global_skew(self):
        # B(0) > G(n): a brand-new edge can never constrain below the
        # global skew, which is what makes insertion safe.
        p = SystemParams.for_network(20)
        assert p.b_function(0.0) > p.global_skew_bound

    def test_floor_reached_at_settle_age(self):
        p = SystemParams.for_network(8)
        age = p.b_settle_subjective
        assert p.b_function(age) == pytest.approx(p.b0)
        assert p.b_function(age * 2) == pytest.approx(p.b0)

    def test_monotone_non_increasing(self):
        p = SystemParams.for_network(8)
        ages = [0.0, 1.0, 5.0, 20.0, 100.0, 1e6]
        values = [p.b_function(a) for a in ages]
        assert values == sorted(values, reverse=True)

    def test_linear_decay_slope(self):
        p = SystemParams.for_network(8)
        a = p.b_settle_subjective / 4
        v0, v1 = p.b_function(a), p.b_function(a + 1.0)
        assert v0 - v1 == pytest.approx(p.b_slope)

    def test_settle_real_accounts_for_drift(self):
        p = SystemParams.for_network(8)
        assert p.b_settle_real == pytest.approx(p.b_settle_subjective / (1 - p.rho))

    @given(st.floats(min_value=0.0, max_value=1e7))
    def test_b_never_below_floor(self, age):
        p = SystemParams.for_network(8)
        assert p.b_function(age) >= p.b0


class TestAutoB0:
    def test_auto_b0_above_floor(self):
        for n in (2, 8, 64, 512):
            p = SystemParams.for_network(n)
            assert p.b0 > 2 * (1 + p.rho) * p.tau

    def test_auto_b0_scales_with_sqrt_n_when_unclamped(self):
        # For large n the Corollary 6.14 term dominates the validity floor.
        p1 = SystemParams.for_network(10_000)
        p2 = SystemParams.for_network(40_000)
        assert p2.b0 == pytest.approx(2.0 * p1.b0, rel=1e-6)
        assert p1.b0 == pytest.approx(
            math.sqrt(p1.rho * p1.n) * p1.global_skew_rate, rel=1e-6
        )

    def test_explicit_b0_respected(self):
        p = SystemParams.for_network(8, b0=50.0)
        assert p.b0 == 50.0
