"""Tests for delay policies and discovery policies."""

from __future__ import annotations

import pytest

from repro.network.channels import (
    ConstantDelay,
    DirectionalDelay,
    PerEdgeDelay,
    UniformDelay,
)
from repro.network.discovery import ConstantDiscovery, UniformDiscovery


class TestConstantDelay:
    def test_value(self):
        p = ConstantDelay(0.7)
        assert p.delay(0, 1, 10.0) == 0.7
        assert p.max_bound() == 0.7

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantDelay(-0.1)


class TestUniformDelay:
    def test_within_range(self, rng):
        p = UniformDelay(0.2, 0.9, rng)
        for _ in range(200):
            d = p.delay(0, 1, 0.0)
            assert 0.2 <= d <= 0.9
        assert p.max_bound() == 0.9

    def test_degenerate_range(self, rng):
        p = UniformDelay(0.5, 0.5, rng)
        assert p.delay(0, 1, 0.0) == 0.5

    def test_bad_range_rejected(self, rng):
        with pytest.raises(ValueError):
            UniformDelay(0.9, 0.2, rng)


class TestPerEdgeDelay:
    def test_override_and_fallback(self):
        p = PerEdgeDelay({(3, 1): 0.9}, default=ConstantDelay(0.1))
        # Canonicalised: both orientations hit the override.
        assert p.delay(1, 3, 0.0) == 0.9
        assert p.delay(3, 1, 0.0) == 0.9
        assert p.delay(0, 2, 0.0) == 0.1
        assert p.max_bound() == 0.9

    def test_negative_override_rejected(self):
        with pytest.raises(ValueError):
            PerEdgeDelay({(0, 1): -0.5}, default=ConstantDelay(0.0))


class TestDirectionalDelay:
    def test_asymmetric(self):
        p = DirectionalDelay({(0, 1): 1.0, (1, 0): 0.0}, default=ConstantDelay(0.5))
        assert p.delay(0, 1, 0.0) == 1.0
        assert p.delay(1, 0, 0.0) == 0.0
        assert p.delay(2, 3, 0.0) == 0.5

    def test_max_bound_includes_default(self):
        p = DirectionalDelay({(0, 1): 0.3}, default=ConstantDelay(0.8))
        assert p.max_bound() == 0.8


class TestDiscoveryPolicies:
    def test_constant(self):
        d = ConstantDiscovery(1.5)
        assert d.latency(0, 1, True, 0.0) == 1.5

    def test_constant_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantDiscovery(-1.0)

    def test_uniform_range(self, rng):
        d = UniformDiscovery(0.5, 2.0, rng)
        for _ in range(100):
            lat = d.latency(0, 1, False, 0.0)
            assert 0.5 <= lat <= 2.0

    def test_uniform_bad_range(self, rng):
        with pytest.raises(ValueError):
            UniformDiscovery(2.0, 0.5, rng)
