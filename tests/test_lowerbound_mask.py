"""Tests for delay masks, flexible distances, and the alpha delay policy."""

from __future__ import annotations

import pytest

from repro import SystemParams
from repro.lowerbound.mask import AlphaDelayPolicy, DelayMask, flexible_distances
from repro.network.topology import path_edges, two_chain_edges


class TestDelayMask:
    def test_constrained_lookup(self):
        m = DelayMask({(2, 1): 0.7}, max_delay=1.0)
        assert m.is_constrained(1, 2) and m.is_constrained(2, 1)
        assert m.pattern(1, 2) == 0.7
        assert not m.is_constrained(0, 1)

    def test_delay_out_of_bounds_rejected(self):
        with pytest.raises(ValueError):
            DelayMask({(0, 1): 1.5}, max_delay=1.0)

    def test_legal_range(self):
        m = DelayMask({(0, 1): 0.8}, max_delay=1.0)
        lo, hi = m.legal_range(0, 1, rho=0.25)
        assert lo == pytest.approx(0.64)
        assert hi == 0.8


class TestFlexibleDistances:
    def test_unmasked_path_equals_hops(self):
        edges = path_edges(6)
        m = DelayMask({}, 1.0)
        d = flexible_distances(range(6), edges, m, 0)
        assert d == {i: i for i in range(6)}

    def test_constrained_edges_cost_zero(self):
        edges = path_edges(6)
        m = DelayMask({(0, 1): 1.0, (1, 2): 1.0}, 1.0)
        d = flexible_distances(range(6), edges, m, 0)
        assert d == {0: 0, 1: 0, 2: 0, 3: 1, 4: 2, 5: 3}

    def test_two_chain_distances(self):
        n = 16
        edges, chains = two_chain_edges(n)
        a = chains["A"]
        k = 2
        blocked = {}
        for i in range(k):
            blocked[(a[i], a[i + 1])] = 1.0
            blocked[(a[-1 - i], a[-2 - i])] = 1.0
        m = DelayMask(blocked, 1.0)
        d = flexible_distances(range(n), edges, m, a[k])
        # Reference layer: u, the blocked prefix and w0 are all at 0.
        assert d[a[k]] == 0 and d[a[0]] == 0
        # v and the blocked suffix share the same (maximal A) layer.
        assert d[a[-1 - k]] == d[a[-1]]
        assert d[a[-1 - k]] == len(a) - 1 - 2 * k
        # Adjacent nodes never differ by more than 1.
        for u, v in edges:
            assert abs(d[u] - d[v]) <= 1

    def test_unknown_source_rejected(self):
        m = DelayMask({}, 1.0)
        with pytest.raises(ValueError):
            flexible_distances(range(3), path_edges(3), m, 99)


class TestAlphaDelayPolicy:
    def _policy(self, n=5, constrained=None):
        edges = path_edges(n)
        m = DelayMask(constrained or {}, 1.0)
        d = flexible_distances(range(n), edges, m, 0)
        return AlphaDelayPolicy(m, d, edges), d

    def test_directional_delays(self):
        p, _ = self._policy()
        # Away from the reference: full delay; toward it: zero.
        assert p.delay(0, 1, 0.0) == 1.0
        assert p.delay(1, 0, 0.0) == 0.0
        assert p.delay(3, 4, 5.0) == 1.0
        assert p.delay(4, 3, 5.0) == 0.0

    def test_constrained_edges_symmetric(self):
        p, d = self._policy(constrained={(0, 1): 0.6})
        assert p.delay(0, 1, 0.0) == 0.6
        assert p.delay(1, 0, 0.0) == 0.6

    def test_same_layer_unconstrained_edge_gets_half_delay(self):
        # A 4-cycle from the reference has two same-layer nodes at the top.
        edges = [(0, 1), (0, 2), (1, 3), (2, 3), (1, 2)]
        m = DelayMask({}, 1.0)
        d = flexible_distances(range(4), edges, m, 0)
        assert d == {0: 0, 1: 1, 2: 1, 3: 2}
        p = AlphaDelayPolicy(m, d, edges)
        assert p.delay(1, 2, 0.0) == 0.5
        assert p.delay(2, 1, 0.0) == 0.5

    def test_unknown_direction_raises(self):
        p, _ = self._policy()
        with pytest.raises(KeyError):
            p.delay(0, 4, 0.0)

    def test_has_direction(self):
        p, _ = self._policy()
        assert p.has_direction(0, 1) and p.has_direction(1, 0)
        assert not p.has_direction(0, 4)

    def test_constrained_edge_must_join_same_layer(self):
        # Constraining (1,2) on a path rooted at 0 gives dist(1) == dist(2),
        # which is consistent; but a *mask* whose constrained edge ends up
        # spanning layers is impossible by construction (0-weight edges
        # collapse layers), so AlphaDelayPolicy accepts any valid BFS input.
        edges = path_edges(4)
        m = DelayMask({(1, 2): 1.0}, 1.0)
        d = flexible_distances(range(4), edges, m, 0)
        assert d[1] == d[2] == 1
        AlphaDelayPolicy(m, d, edges)  # must not raise

    def test_max_bound(self):
        p, _ = self._policy()
        assert p.max_bound() == 1.0
