"""Cross-topology integration: the full bundle on every topology builder.

Runs the DCSA on grids, trees, rings, stars, random-regular and random
geometric graphs (static and churned) and checks the complete invariant
bundle, plus a couple of end-to-end determinism checks for the scenario
experiments.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import SystemParams
from repro.analysis import (
    drift_rate,
    envelope_violations,
    gradient_profile,
    max_global_skew,
)
from repro.core import skew_bounds as sb
from repro.harness import ExperimentConfig, run_experiment
from repro.lowerbound import run_masking_experiment
from repro.network.topology import (
    binary_tree_edges,
    grid_edges,
    random_geometric,
    random_regular_edges,
    ring_edges,
    star_edges,
)


def _bundle(cfg: ExperimentConfig) -> None:
    res = run_experiment(cfg)
    params = cfg.params
    assert max_global_skew(res.record) <= sb.global_skew_bound(params) + 1e-9
    assert envelope_violations(res.record, params).compliant
    dl = np.diff(res.record.clocks, axis=0)
    dt = np.diff(res.record.times)
    assert np.all(dl >= 0.5 * dt[:, None] - 1e-9)


TOPOLOGIES = [
    ("grid_3x4", lambda rng: grid_edges(3, 4), 12),
    ("tree_13", lambda rng: binary_tree_edges(13), 13),
    ("ring_11", lambda rng: ring_edges(11), 11),
    ("star_9", lambda rng: star_edges(9), 9),
    ("regular_12_3", lambda rng: random_regular_edges(12, 3, rng), 12),
    ("geometric_12", lambda rng: random_geometric(12, 0.45, rng)[0], 12),
]


class TestTopologies:
    @pytest.mark.parametrize("name,builder,n", TOPOLOGIES)
    def test_dcsa_bundle(self, name, builder, n, rng):
        cfg = ExperimentConfig(
            params=SystemParams.for_network(n),
            initial_edges=builder(rng),
            clock_spec="split",
            horizon=100.0,
            sample_interval=2.0,
            seed=13,
        )
        _bundle(cfg)

    @pytest.mark.parametrize("name,builder,n", TOPOLOGIES[:3])
    def test_max_sync_global_bound(self, name, builder, n, rng):
        cfg = ExperimentConfig(
            params=SystemParams.for_network(n),
            initial_edges=builder(rng),
            algorithm="max",
            clock_spec="split",
            horizon=100.0,
            seed=13,
        )
        res = run_experiment(cfg)
        assert res.max_global_skew <= sb.global_skew_bound(cfg.params) + 1e-9


class TestGradientShape:
    def test_profile_monotone_trend_on_path(self):
        """On a path under adversarial drift, the max skew at distance d is
        (weakly) increasing in d when aggregated — the gradient shape."""
        cfg = ExperimentConfig(
            params=SystemParams.for_network(16),
            initial_edges=[(i, i + 1) for i in range(15)],
            clock_spec="split",
            delay_spec="max",
            horizon=150.0,
            seed=17,
        )
        res = run_experiment(cfg)
        prof = gradient_profile(res.record, res.graph, 150.0)
        # Compare the nearest band against the farthest band.
        near = max(prof[d] for d in (1, 2))
        far = max(prof[d] for d in (max(prof), max(prof) - 1))
        assert far >= near


class TestFreeRunningCalibration:
    def test_drift_rate_matches_hardware(self):
        cfg = ExperimentConfig(
            params=SystemParams.for_network(6),
            initial_edges=[(i, i + 1) for i in range(5)],
            algorithm="free",
            clock_spec="split",
            horizon=100.0,
            seed=0,
        )
        res = run_experiment(cfg)
        # Half the clocks at 1+rho, half at 1-rho: the mean is ~1.
        assert drift_rate(res.record) == pytest.approx(1.0, abs=2 * cfg.params.rho)
        # And the skew grows at exactly 2 rho t.
        expected = 2 * cfg.params.rho * 100.0
        assert res.max_global_skew == pytest.approx(expected, rel=0.02)


class TestScenarioDeterminism:
    def test_masking_experiment_deterministic(self):
        params = SystemParams.for_network(8, rho=0.05)
        a = run_masking_experiment(params, check_indistinguishability=False)
        b = run_masking_experiment(params, check_indistinguishability=False)
        assert a.skew_alpha == b.skew_alpha
        assert a.skew_beta == b.skew_beta

    def test_masking_floor_scales_with_distance(self):
        """Skew extracted is exactly proportional to flexible distance."""
        params = SystemParams.for_network(10, rho=0.05)
        skews = {}
        for prefix in (0, 2, 4):
            r = run_masking_experiment(params, constrained_prefix=prefix,
                                       check_indistinguishability=False)
            skews[r.flexible_distance] = r.skew
        dists = sorted(skews)
        ratios = [skews[d] / d for d in dists]
        assert max(ratios) - min(ratios) < 0.15 * max(ratios)
